//! Cross-crate integration: the full pipeline from generation through
//! persistence to querying, including the file-backed access path.

use cbr_corpus::{CorpusGenerator, CorpusProfile, FilterConfig};
use cbr_index::{FileSource, ForwardIndex, IndexSource, InvertedIndex, MemorySource};
use cbr_knds::{Knds, KndsConfig};
use cbr_ontology::{GeneratorConfig, OntologyGenerator};
use concept_rank::EngineBuilder;
use concept_rank_repro::demo;

#[test]
fn generated_pipeline_produces_consistent_engine() {
    let engine = demo::engine(3_000, 120, 15.0);
    let query: Vec<_> = engine
        .corpus()
        .documents()
        .find(|d| d.num_concepts() >= 2)
        .map(|d| d.concepts()[..2].to_vec())
        .unwrap();
    let fast = engine.rds(&query, 8).unwrap();
    let slow = engine.rds_full_scan(&query, 8).unwrap();
    assert_eq!(fast.results.len(), 8);
    for (a, b) in fast.results.iter().zip(slow.results.iter()) {
        assert_eq!(a.distance, b.distance);
    }
}

#[cfg(feature = "serde")]
#[test]
fn snapshot_roundtrip_preserves_query_results() {
    use cbr_index::SnapshotStore;
    use cbr_ontology::Ontology;

    let dir = std::env::temp_dir().join(format!("cbr-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = SnapshotStore::open(&dir).unwrap();

    let ont = OntologyGenerator::new(GeneratorConfig::small(1_500)).generate();
    let corpus = CorpusGenerator::new(
        &ont,
        CorpusProfile::radio_like().with_num_docs(80).with_mean_concepts(12.0),
    )
    .generate();
    store.save("ontology", &ont).unwrap();
    store.save("corpus", &corpus).unwrap();

    let ont2: Ontology = store.load("ontology").unwrap();
    let corpus2: cbr_corpus::Corpus = store.load("corpus").unwrap();

    let q: Vec<_> = corpus
        .documents()
        .find(|d| d.num_concepts() >= 3)
        .map(|d| d.concepts()[..3].to_vec())
        .unwrap();
    let src1 = MemorySource::build(&corpus, ont.len());
    let src2 = MemorySource::build(&corpus2, ont2.len());
    let r1 = Knds::new(&ont, &src1, KndsConfig::default()).rds(&q, 5);
    let r2 = Knds::new(&ont2, &src2, KndsConfig::default()).rds(&q, 5);
    for (a, b) in r1.results.iter().zip(r2.results.iter()) {
        assert_eq!(a.doc, b.doc);
        assert_eq!(a.distance, b.distance);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn file_backed_source_answers_identically() {
    let ont = OntologyGenerator::new(GeneratorConfig::small(1_200)).generate();
    let corpus = CorpusGenerator::new(
        &ont,
        CorpusProfile::radio_like().with_num_docs(60).with_mean_concepts(10.0),
    )
    .generate();
    let inverted = InvertedIndex::build(&corpus, ont.len());
    let forward = ForwardIndex::build(&corpus);
    let mem = MemorySource::new(inverted.clone(), forward.clone());

    let path = std::env::temp_dir().join(format!("cbr-e2e-{}.idx", std::process::id()));
    FileSource::write_image(&path, &inverted, &forward).unwrap();
    let file = FileSource::open(&path).unwrap();
    assert_eq!(file.num_docs(), mem.num_docs());

    let q: Vec<_> = corpus
        .documents()
        .find(|d| d.num_concepts() >= 2)
        .map(|d| d.concepts()[..2].to_vec())
        .unwrap();
    let a = Knds::new(&ont, &mem, KndsConfig::default()).rds(&q, 6);
    let b = Knds::new(&ont, &file, KndsConfig::default()).rds(&q, 6);
    for (x, y) in a.results.iter().zip(b.results.iter()) {
        assert_eq!(x.doc, y.doc);
        assert_eq!(x.distance, y.distance);
    }
    // The file-backed run attributes real time to the I/O bucket. (Not
    // compared against the in-memory run's bucket: both are wall-clock
    // timers, and scheduler noise can inflate the in-memory one.)
    assert!(b.metrics.io > std::time::Duration::ZERO);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn text_to_query_pipeline() {
    use cbr_corpus::{ConceptExtractor, Corpus, DocId, ExtractorConfig, NoteGenerator};

    let ont = OntologyGenerator::new(GeneratorConfig::small(400)).generate();
    let extractor = ConceptExtractor::new(&ont, ExtractorConfig::default());
    let concepts: Vec<_> = ont.concepts().skip(50).step_by(9).take(6).collect();
    let mut gen = NoteGenerator::new(&ont, 5);
    gen.abbreviation_rate = 0.0; // keep mentions literal for this test
    let note = gen.render(&concepts, &[]);
    let doc = extractor.extract_document(DocId(0), &note);
    for &c in &concepts {
        assert!(doc.contains(c));
    }

    let corpus = Corpus::new(vec![doc]);
    let engine = EngineBuilder::new().build(ont, corpus);
    let r = engine.rds(&concepts, 1).unwrap();
    assert_eq!(r.results[0].distance, 0.0, "note must match its own concepts");
}

#[test]
fn filtering_changes_are_consistent_between_engine_and_manual_path() {
    let ont = OntologyGenerator::new(GeneratorConfig::small(2_000)).generate();
    let corpus = CorpusGenerator::new(
        &ont,
        CorpusProfile::patient_like().with_num_docs(50).with_mean_concepts(40.0),
    )
    .generate();
    let filter = cbr_corpus::ConceptFilter::build(&ont, &corpus, FilterConfig::default());
    let filtered = filter.apply(&corpus);
    let engine = EngineBuilder::new()
        .filter(FilterConfig::default())
        .build(OntologyGenerator::new(GeneratorConfig::small(2_000)).generate(), corpus.clone());
    // Same generator seed -> same ontology -> engine's corpus equals the
    // manually filtered one.
    for (a, b) in engine.corpus().documents().zip(filtered.documents()) {
        assert_eq!(a.concepts(), b.concepts());
    }
}

#[test]
fn dynamic_appends_interact_with_filtering() {
    let mut engine = demo::engine(2_000, 40, 12.0);
    let root = engine.ontology().root();
    let eligible: Vec<_> = engine
        .corpus()
        .documents()
        .flat_map(|d| d.concepts().iter().copied())
        .filter(|&c| engine.eligible(c))
        .take(3)
        .collect();
    // Root is depth-filtered: an appended doc keeps only eligible concepts.
    let mut payload = eligible.clone();
    payload.push(root);
    let id = engine.add_document(payload);
    let stored = engine.document_concepts(id).unwrap();
    assert_eq!(stored.len(), eligible.len());
    assert!(!stored.contains(&root));
}
