//! Clinical-trial candidate screening — the paper's motivating RDS
//! scenario (Section 1): "a clinical researcher searching an EMR database
//! for patients that qualify to participate in a clinical trial … wishes
//! to find the most relevant patient records with respect to a set of
//! medical concepts."
//!
//! The example builds a PATIENT-shaped corpus (few records, many clustered
//! concepts each), issues an eligibility-criteria query, then demonstrates
//! two things the paper highlights:
//!
//! * result quality degrades gracefully: records that contain *similar*
//!   concepts (ontology neighbors) rank close behind exact matches;
//! * new patients are searchable instantly (`add_document`) — the
//!   advantage over TA-style precomputed indexes.
//!
//! ```sh
//! cargo run --release --example clinical_trial_search
//! ```

use cbr_corpus::{CorpusGenerator, CorpusProfile, FilterConfig};
use concept_rank::prelude::*;
use concept_rank::EngineBuilder;

fn main() {
    let ontology = OntologyGenerator::new(GeneratorConfig::snomed_like(8_000)).generate();
    let corpus = CorpusGenerator::new(
        &ontology,
        CorpusProfile::patient_like().with_num_docs(150).with_mean_concepts(80.0),
    )
    .generate();
    let mut engine = EngineBuilder::new().filter(FilterConfig::default()).build(ontology, corpus);
    println!(
        "screening {} patient records over {} concepts\n",
        engine.num_docs(),
        engine.ontology().len()
    );

    // Eligibility criteria: five concepts drawn from one record's cluster,
    // standing in for "breast cancer history + specific treatments".
    let criteria: Vec<ConceptId> = engine
        .corpus()
        .documents()
        .find(|d| d.num_concepts() >= 40)
        .map(|d| d.concepts().iter().copied().step_by(8).take(5).collect())
        .expect("a dense record exists");
    println!("trial eligibility criteria:");
    for &c in &criteria {
        println!("  - {} (depth {})", engine.ontology().label(c), engine.ontology().depth(c));
    }

    let hits = engine.rds(&criteria, 10).expect("criteria are eligible");
    println!("\ntop-10 candidate records:");
    println!("{:<8} {:>8}   evidence", "record", "Ddq");
    for hit in &hits.results {
        let ex = engine.explain_rds(hit.doc, &criteria).expect("explainable");
        let exact = ex.matches.iter().filter(|m| m.distance == 0).count();
        println!(
            "{:<8} {:>8}   {}/{} criteria matched exactly, rest via similar concepts",
            hit.doc.to_string(),
            hit.distance,
            exact,
            ex.matches.len()
        );
    }
    println!(
        "\n[kNDS examined {} of {} records; {} DRC probes; {:?} total]",
        hits.metrics.docs_examined,
        engine.num_docs(),
        hits.metrics.drc_calls,
        hits.metrics.total()
    );

    // A new patient arrives at the point of care carrying exactly the
    // trial criteria — searchable with no index rebuild.
    let new_patient = engine.add_document(criteria.clone());
    let rerun = engine.rds(&criteria, 1).expect("criteria are eligible");
    println!(
        "\nafter admitting {new_patient}: best candidate is {} at distance {}",
        rerun.results[0].doc, rerun.results[0].distance
    );
    assert_eq!(rerun.results[0].distance, 0.0);
}
