//! The structural-invariant half of the audit: run every `validate()`
//! over deterministic generated corpora, prove the validators catch
//! injected corruption, and stress the shared workspace pool.
//!
//! Everything here is seeded — two runs of `cbr-audit invariants` do the
//! same work and reach the same verdict.

use crate::report::{Finding, Report};
use cbr_corpus::{Corpus, CorpusGenerator, CorpusProfile};
use cbr_dradix::DRadixDag;
use cbr_index::MemorySource;
use cbr_ontology::{ConceptId, GeneratorConfig, Ontology, OntologyGenerator};
use concept_rank::{EngineBuilder, SharedEngine};

const SEEDS: [u64; 3] = [7, 42, 20_140_324];

fn generated(seed: u64) -> (Ontology, Corpus) {
    let ont = OntologyGenerator::new(GeneratorConfig::small(600).with_seed(seed)).generate();
    let corpus = CorpusGenerator::new(
        &ont,
        CorpusProfile::radio_like().with_num_docs(40).with_mean_concepts(6.0),
    )
    .generate();
    (ont, corpus)
}

fn check(report: &mut Report, name: &str, result: Result<(), String>) {
    match result {
        Ok(()) => report.passed.push(format!("invariant {name}")),
        Err(msg) => report.findings.push(Finding::new("INV", name, 0, msg)),
    }
}

/// Runs the full invariant suite and returns its report.
pub fn run() -> Report {
    let mut report = Report::default();
    check(&mut report, "ontology-validate", ontology_validate());
    check(&mut report, "index-pair-validate", index_pair_validate());
    check(&mut report, "dradix-validate", dradix_validate());
    check(&mut report, "dradix-catches-corruption", dradix_catches_corruption());
    check(&mut report, "snapshot-frame-roundtrip", snapshot_frame_roundtrip());
    check(&mut report, "workspace-pool-stress", workspace_pool_stress());
    report
}

/// Generated ontologies satisfy the graph and Dewey-path validators.
fn ontology_validate() -> Result<(), String> {
    for seed in SEEDS {
        let (ont, _) = generated(seed);
        ont.validate().map_err(|v| format!("seed {seed}: graph violations {v:?}"))?;
        ont.validate_paths().map_err(|v| format!("seed {seed}: path violations {v:?}"))?;
    }
    Ok(())
}

/// Forward/inverted pairs built from generated corpora cross-validate.
fn index_pair_validate() -> Result<(), String> {
    for seed in SEEDS {
        let (ont, corpus) = generated(seed);
        let source = MemorySource::build(&corpus, ont.len());
        cbr_index::validate_pair(source.forward(), source.inverted())
            .map_err(|v| format!("seed {seed}: index violations {v:?}"))?;
    }
    Ok(())
}

/// Document/query pairs sampled per seed.
fn doc_query_pairs(corpus: &Corpus) -> Vec<(Vec<ConceptId>, Vec<ConceptId>)> {
    let docs: Vec<Vec<ConceptId>> =
        corpus.documents().map(|d| d.concepts().to_vec()).filter(|c| !c.is_empty()).collect();
    docs.windows(2)
        .take(6)
        .map(|w| {
            let query: Vec<ConceptId> = w[1].iter().copied().take(4).collect();
            (w[0].clone(), query)
        })
        .collect()
}

/// Tuned D-Radix DAGs pass the full validator (structure, downward
/// fixpoint, re-derived tuning, and brute-force distance spot checks).
fn dradix_validate() -> Result<(), String> {
    for seed in SEEDS {
        let (ont, corpus) = generated(seed);
        for (doc, query) in doc_query_pairs(&corpus) {
            let mut dag = DRadixDag::build(&ont, &doc, &query);
            dag.tune();
            dag.validate(&ont, &doc, &query)
                .map_err(|v| format!("seed {seed}: dag violations {v:?}"))?;
        }
    }
    Ok(())
}

/// The validator is not vacuous: injected corruption must be reported.
fn dradix_catches_corruption() -> Result<(), String> {
    let (ont, corpus) = generated(SEEDS[0]);
    let mut inflated = 0usize;
    let mut broken = 0usize;
    for (doc, query) in doc_query_pairs(&corpus) {
        let mut dag = DRadixDag::build(&ont, &doc, &query);
        dag.tune();
        if dag.corrupt_inflate_distance() {
            inflated += 1;
            if dag.validate(&ont, &doc, &query).is_ok() {
                return Err("inflated distance slipped past validate()".into());
            }
        }
        let mut dag = DRadixDag::build(&ont, &doc, &query);
        dag.tune();
        if dag.corrupt_break_compression(&ont) {
            broken += 1;
            if dag.validate_structure().is_ok() {
                return Err("broken path compression slipped past validate_structure()".into());
            }
        }
    }
    if inflated == 0 || broken == 0 {
        return Err(format!(
            "corruption injectors found no target (inflated {inflated}, broken {broken}) — \
             corpus too small to prove detection"
        ));
    }
    Ok(())
}

/// Snapshot frames round-trip and detect single-bit corruption at every
/// byte position of a real encoded body.
fn snapshot_frame_roundtrip() -> Result<(), String> {
    use cbr_index::snapshot::{decode_frame, encode_frame};
    let (_, corpus) = generated(SEEDS[1]);
    let body: Vec<u8> = corpus
        .documents()
        .flat_map(|d| d.concepts().iter().map(|c| (c.index() % 251) as u8).collect::<Vec<u8>>())
        .take(512)
        .collect();
    let framed = encode_frame(&body);
    let back = decode_frame(&framed).map_err(|e| format!("roundtrip failed: {e}"))?;
    if back != body.as_slice() {
        return Err("roundtrip returned different bytes".into());
    }
    for at in 0..framed.len() {
        let mut bad = framed.clone();
        bad[at] ^= 0x40;
        if let Ok(b) = decode_frame(&bad) {
            // Flipping a bit inside the stored length can still yield a
            // shorter frame with a matching checksum only if the checksum
            // also collides — treat any silent acceptance as a failure.
            if b == body.as_slice() {
                return Err(format!("bit flip at byte {at} was silently accepted"));
            }
            return Err(format!("bit flip at byte {at} decoded to different bytes"));
        }
    }
    Ok(())
}

/// The shared workspace pool never exceeds peak concurrency, and a
/// panicked query drops (never re-pools) its workspace.
fn workspace_pool_stress() -> Result<(), String> {
    let (ont, corpus) = generated(SEEDS[2]);
    let query: Vec<ConceptId> = corpus
        .documents()
        .find_map(|d| (d.num_concepts() >= 2).then(|| d.concepts()[..2].to_vec()))
        .ok_or("generated corpus has no 2-concept document")?;
    let engine = EngineBuilder::new().build(ont, corpus);
    let shared = SharedEngine::new(engine);

    const THREADS: usize = 4;
    const ROUNDS: usize = 8;
    let barrier = std::sync::Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let s = shared.clone();
            let q = query.clone();
            let barrier = &barrier;
            scope.spawn(move || {
                for _ in 0..ROUNDS {
                    barrier.wait();
                    s.rds(&q, 3).expect("stress query failed");
                }
            });
        }
    });
    let pooled = shared.pooled_workspaces();
    if pooled > THREADS {
        return Err(format!("pool leaked: {pooled} workspaces for {THREADS} threads"));
    }
    if pooled == 0 {
        return Err("no workspace returned to the pool".into());
    }

    // Poison: k = 0 panics inside the engine while a workspace is checked
    // out; the workspace must be dropped, not returned.
    let before = shared.pooled_workspaces();
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = shared.rds(&query, 0);
    }))
    .is_err();
    std::panic::set_hook(prev_hook);
    if !panicked {
        return Err("k = 0 should panic (poison probe)".into());
    }
    if shared.pooled_workspaces() != before - 1 {
        return Err("poisoned workspace was returned to the pool".into());
    }
    let r = shared.rds(&query, 3).map_err(|e| format!("query after poison failed: {e}"))?;
    if r.results.is_empty() {
        return Err("query after poison returned no results".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_invariant_suite_passes() {
        let report = run();
        assert!(report.ok(), "invariant failures: {:?}", report.findings);
        assert_eq!(report.passed.len(), 6);
    }
}
