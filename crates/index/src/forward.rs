//! Forward index: document → its concept set.

use crate::packing;
use cbr_corpus::{Corpus, DocId};
use cbr_ontology::ConceptId;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// CSR-layout forward index over a corpus.
///
/// kNDS consults this when a document needs its full concept set: DRC
/// probes (Algorithm 2 line 19) and the `|C|` normalizers of the SDS
/// distance (Equation 3).
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ForwardIndex {
    offsets: Vec<u32>,
    concepts: Vec<ConceptId>,
}

impl ForwardIndex {
    /// Builds the index for `corpus`.
    pub fn build(corpus: &Corpus) -> ForwardIndex {
        let mut offsets = Vec::with_capacity(corpus.len() + 1);
        let mut concepts = Vec::new();
        offsets.push(0u32);
        for d in corpus.documents() {
            concepts.extend_from_slice(d.concepts());
            offsets.push(packing::csr_offset(concepts.len()));
        }
        ForwardIndex { offsets, concepts }
    }

    /// The sorted concept set of document `d`.
    #[inline]
    pub fn concepts(&self, d: DocId) -> &[ConceptId] {
        let i = d.index();
        &self.concepts[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of distinct concepts of `d` (`|C|` of Equation 3).
    #[inline]
    pub fn num_concepts(&self, d: DocId) -> usize {
        self.concepts(d).len()
    }

    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Raw CSR parts (offsets, concepts) — used by the file image writer.
    pub(crate) fn parts(&self) -> (&[u32], &[ConceptId]) {
        (&self.offsets, &self.concepts)
    }

    /// Swaps the first two stored concepts so validator tests can prove
    /// that an unsorted concept set is detected.
    #[cfg(test)]
    pub(crate) fn corrupt_order_for_tests(&mut self) {
        self.concepts.swap(0, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_documents_to_concepts() {
        let corpus = Corpus::from_concept_sets(vec![
            (vec![ConceptId(3), ConceptId(1)], 0),
            (vec![], 0),
            (vec![ConceptId(2)], 0),
        ]);
        let idx = ForwardIndex::build(&corpus);
        assert_eq!(idx.concepts(DocId(0)), &[ConceptId(1), ConceptId(3)]);
        assert_eq!(idx.concepts(DocId(1)), &[] as &[ConceptId]);
        assert_eq!(idx.concepts(DocId(2)), &[ConceptId(2)]);
        assert_eq!(idx.num_concepts(DocId(0)), 2);
        assert_eq!(idx.num_docs(), 3);
    }

    #[test]
    fn agrees_with_corpus() {
        let corpus = Corpus::from_concept_sets(vec![
            (vec![ConceptId(5), ConceptId(2), ConceptId(5)], 0),
            (vec![ConceptId(9)], 0),
        ]);
        let idx = ForwardIndex::build(&corpus);
        for d in corpus.documents() {
            assert_eq!(idx.concepts(d.id()), d.concepts());
        }
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_roundtrip() {
        let corpus = Corpus::from_concept_sets(vec![(vec![ConceptId(1)], 0)]);
        let idx = ForwardIndex::build(&corpus);
        let bytes = cbr_ontology::ser::to_tokens(&idx).unwrap();
        let back: ForwardIndex = cbr_ontology::ser::from_tokens(&bytes).unwrap();
        assert_eq!(back.concepts(DocId(0)), idx.concepts(DocId(0)));
    }
}
