//! Synthetic ontology generator calibrated to SNOMED-CT's published shape.
//!
//! The real SNOMED-CT release is licence-gated, so the reproduction uses a
//! parameterized generator whose targets come straight from Section 6.1 of
//! the paper: 296,433 concepts, an average of 4.53 children per internal
//! node, 9.78 Dewey path addresses per concept with average length 14.1
//! (maximum 29 paths). The ranking algorithms only ever observe the DAG
//! shape — fanout, multi-parent rate, depth — so matching these statistics
//! preserves the behaviour the experiments measure.
//!
//! Generation model (deterministic given the seed):
//!
//! 1. nodes are created one at a time; the **primary parent** of a new node
//!    is either an existing internal node (probability `1 − 1/fanout`,
//!    keeping internal fanout near the target) or a promoted leaf;
//!    internal-parent sampling is tilted toward deeper nodes by
//!    `depth_bias` to stretch the hierarchy to SNOMED-like depths;
//! 2. with probability `multi_parent_prob` (geometric repeats) the node
//!    also receives **extra parents** among older nodes of similar depth —
//!    always older, so the graph is acyclic by construction;
//! 3. every node tracks its root-path count incrementally
//!    (`paths(v) = Σ paths(parents)`); an extra parent is rejected if it
//!    would push the count past `max_paths_per_concept`, which bounds the
//!    Dewey table globally (SNOMED-CT's observed maximum is 29).

use crate::graph::{Ontology, OntologyBuilder};
use crate::id::ConceptId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tunable parameters for [`OntologyGenerator`].
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of concepts to generate (≥ 1).
    pub num_concepts: usize,
    /// Target mean children per internal node (paper: 4.53 for SNOMED-CT).
    pub internal_fanout: f64,
    /// Exponent tilting primary-parent choice toward deep nodes; 0 gives a
    /// uniform recursive tree (depth ~ log n), larger values stretch depth.
    pub depth_bias: f64,
    /// Probability that a node gains an extra parent (applied repeatedly,
    /// so the number of extra parents is geometric).
    pub multi_parent_prob: f64,
    /// Hard cap on Dewey addresses per concept (paper: SNOMED max is 29).
    pub max_paths_per_concept: u64,
    /// RNG seed; equal configs generate identical ontologies.
    pub seed: u64,
}

impl GeneratorConfig {
    /// A SNOMED-CT-shaped configuration with `n` concepts.
    ///
    /// Constants were calibrated empirically against the Section 6.1
    /// targets: at `n = 50_000` the generated DAG measures 4.44 children
    /// per internal node (target 4.53), 10.1 Dewey paths per concept
    /// (target 9.78, max 32 vs 29) and average path length 12.2
    /// (target 14.1; depth keeps growing with `n`).
    pub fn snomed_like(n: usize) -> Self {
        GeneratorConfig {
            num_concepts: n,
            internal_fanout: 3.4,
            depth_bias: 22.0,
            multi_parent_prob: 0.24,
            max_paths_per_concept: 32,
            seed: 0x5EED_0001,
        }
    }

    /// A small, quick configuration for unit tests and examples.
    pub fn small(n: usize) -> Self {
        GeneratorConfig {
            num_concepts: n,
            internal_fanout: 3.0,
            depth_bias: 2.0,
            multi_parent_prob: 0.15,
            max_paths_per_concept: 16,
            seed: 0x5EED_0002,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates synthetic concept DAGs from a [`GeneratorConfig`].
#[derive(Debug)]
pub struct OntologyGenerator {
    config: GeneratorConfig,
}

impl OntologyGenerator {
    /// Creates a generator for the given configuration.
    pub fn new(config: GeneratorConfig) -> Self {
        OntologyGenerator { config }
    }

    /// Generates the ontology. Deterministic for a fixed configuration.
    pub fn generate(&self) -> Ontology {
        let cfg = &self.config;
        assert!(cfg.num_concepts >= 1, "at least one concept required");
        assert!(cfg.internal_fanout > 1.0, "fanout must exceed 1");
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let mut builder = OntologyBuilder::new();
        let mut labeler = Labeler::new();
        let root = builder.add_concept(labeler.next(&mut rng));

        let n = cfg.num_concepts;
        let mut depths: Vec<u32> = Vec::with_capacity(n);
        let mut path_counts: Vec<u64> = Vec::with_capacity(n);
        depths.push(0);
        path_counts.push(1);

        // Internal nodes (have ≥1 child) and current leaves.
        let mut internal: Vec<ConceptId> = Vec::new();
        let mut leaves: Vec<ConceptId> = Vec::new();
        // Position of each leaf in `leaves` for O(1) promotion.
        let mut leaf_pos: Vec<usize> = vec![usize::MAX; n];
        let mut max_depth = 0u32;

        // The root starts as a leaf (it gets promoted by the first child).
        leaves.push(root);
        leaf_pos[root.index()] = 0;

        let p_internal = 1.0 - 1.0 / cfg.internal_fanout;

        for _ in 1..n {
            // --- primary parent -------------------------------------------------
            let parent = if !internal.is_empty() && rng.random::<f64>() < p_internal {
                // Recency-tilted pick among internal nodes: recently promoted
                // internals sit deeper in the hierarchy on average, so a
                // power-law skew toward the tail of the pool stretches depth
                // (depth_bias = 1 is uniform; larger means deeper).
                let r = rng.random::<f64>().powf(1.0 / cfg.depth_bias);
                let idx = ((internal.len() as f64) * r) as usize;
                internal[idx.min(internal.len() - 1)]
            } else {
                // Promote a random leaf to internal.
                let idx = rng.random_range(0..leaves.len());
                let leaf = leaves.swap_remove(idx);
                leaf_pos[leaf.index()] = usize::MAX;
                if idx < leaves.len() {
                    leaf_pos[leaves[idx].index()] = idx;
                }
                internal.push(leaf);
                leaf
            };

            let node = builder.add_concept(labeler.next(&mut rng));
            builder.add_edge(parent, node).expect("generated ids are valid");
            let mut depth = depths[parent.index()] + 1;
            let mut pc = path_counts[parent.index()];

            // --- extra parents ---------------------------------------------------
            let primary_depth = depths[parent.index()];
            let mut chosen_parents = vec![parent];
            let mut extra_guard = 0;
            while rng.random::<f64>() < cfg.multi_parent_prob && extra_guard < 4 {
                extra_guard += 1;
                // Candidate among older nodes near the primary parent's depth.
                let mut chosen = None;
                for attempt in 0..12 {
                    // Prefer existing internal nodes so extra parents do not
                    // dilute the internal fanout; fall back to any older
                    // node on later attempts.
                    let cand = if attempt < 8 && !internal.is_empty() {
                        internal[rng.random_range(0..internal.len())]
                    } else {
                        ConceptId::from_index(rng.random_range(0..node.index()))
                    };
                    if cand.index() >= node.index() || chosen_parents.contains(&cand) {
                        continue;
                    }
                    let dd = depths[cand.index()].abs_diff(primary_depth);
                    if dd <= 3 && pc + path_counts[cand.index()] <= cfg.max_paths_per_concept {
                        chosen = Some(cand);
                        break;
                    }
                }
                let Some(extra) = chosen else { break };
                builder.add_edge(extra, node).expect("generated ids are valid");
                chosen_parents.push(extra);
                pc += path_counts[extra.index()];
                depth = depth.min(depths[extra.index()] + 1);
                // The extra parent becomes internal if it was a leaf.
                if leaf_pos[extra.index()] != usize::MAX {
                    let idx = leaf_pos[extra.index()];
                    leaves.swap_remove(idx);
                    leaf_pos[extra.index()] = usize::MAX;
                    if idx < leaves.len() {
                        leaf_pos[leaves[idx].index()] = idx;
                    }
                    internal.push(extra);
                }
            }

            depths.push(depth);
            path_counts.push(pc);
            max_depth = max_depth.max(depth);
            leaf_pos[node.index()] = leaves.len();
            leaves.push(node);
        }

        builder.build().expect("generator output is a valid DAG")
    }
}

/// Produces pronounceable medical-flavoured concept labels
/// (`"chronic cardiac finding"`), unique by construction.
struct Labeler {
    counter: usize,
    used: crate::hash::FxHashSet<String>,
}

const MODIFIERS: &[&str] = &[
    "acute",
    "chronic",
    "congenital",
    "recurrent",
    "severe",
    "mild",
    "primary",
    "secondary",
    "benign",
    "malignant",
    "focal",
    "diffuse",
    "bilateral",
    "proximal",
    "distal",
    "partial",
];

const SITES: &[&str] = &[
    "cardiac",
    "renal",
    "hepatic",
    "pulmonary",
    "gastric",
    "neural",
    "vascular",
    "skeletal",
    "dermal",
    "ocular",
    "aortic",
    "valvular",
    "arterial",
    "venous",
    "cranial",
    "thoracic",
];

const KINDS: &[&str] = &[
    "finding",
    "disorder",
    "syndrome",
    "lesion",
    "stenosis",
    "insufficiency",
    "hypertrophy",
    "infection",
    "inflammation",
    "obstruction",
    "malformation",
    "degeneration",
    "embolism",
    "thrombosis",
    "fibrosis",
    "neoplasm",
];

impl Labeler {
    fn new() -> Self {
        Labeler { counter: 0, used: crate::hash::FxHashSet::default() }
    }

    fn next(&mut self, rng: &mut StdRng) -> String {
        // Prefer a clean three-word term (there are 16³ = 4096 combos, so
        // small ontologies — the ones the text-extraction pipeline runs
        // over — get natural-language labels); fall back to a numbered
        // variant once combos run out.
        for _ in 0..4 {
            let label = format!(
                "{} {} {}",
                MODIFIERS[rng.random_range(0..MODIFIERS.len())],
                SITES[rng.random_range(0..SITES.len())],
                KINDS[rng.random_range(0..KINDS.len())],
            );
            if self.used.insert(label.clone()) {
                return label;
            }
        }
        loop {
            let label = format!(
                "{} {} {} type {}",
                MODIFIERS[rng.random_range(0..MODIFIERS.len())],
                SITES[rng.random_range(0..SITES.len())],
                KINDS[rng.random_range(0..KINDS.len())],
                self.counter
            );
            self.counter += 1;
            if self.used.insert(label.clone()) {
                return label;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OntologyStats;

    #[test]
    fn generates_requested_size() {
        let ont = OntologyGenerator::new(GeneratorConfig::small(500)).generate();
        assert_eq!(ont.len(), 500);
        assert_eq!(ont.root(), ConceptId(0));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = OntologyGenerator::new(GeneratorConfig::small(300)).generate();
        let b = OntologyGenerator::new(GeneratorConfig::small(300)).generate();
        assert_eq!(a.num_edges(), b.num_edges());
        for c in a.concepts() {
            assert_eq!(a.children(c), b.children(c));
            assert_eq!(a.label(c), b.label(c));
        }
    }

    #[test]
    fn different_seed_differs() {
        let a = OntologyGenerator::new(GeneratorConfig::small(300)).generate();
        let b = OntologyGenerator::new(GeneratorConfig::small(300).with_seed(99)).generate();
        let same_edges =
            a.num_edges() == b.num_edges() && a.concepts().all(|c| a.children(c) == b.children(c));
        assert!(!same_edges, "different seeds should give different DAGs");
    }

    #[test]
    fn respects_path_cap() {
        let cfg = GeneratorConfig {
            multi_parent_prob: 0.5, // aggressive: the cap must hold anyway
            ..GeneratorConfig::small(2_000)
        };
        let ont = OntologyGenerator::new(cfg.clone()).generate();
        let pt = ont.path_table();
        for c in ont.concepts() {
            assert!(
                pt.path_count(c) as u64 <= cfg.max_paths_per_concept,
                "concept {c} has {} paths",
                pt.path_count(c)
            );
        }
    }

    #[test]
    fn incremental_path_counts_match_table() {
        let ont = OntologyGenerator::new(GeneratorConfig::small(800)).generate();
        let pt = ont.path_table();
        let counts = ont.path_counts();
        for c in ont.concepts() {
            assert_eq!(counts[c.index()], pt.path_count(c) as u64);
        }
    }

    #[test]
    fn snomed_like_shape_is_in_band() {
        // Calibration check at a test-friendly size: the shape statistics
        // should land in a loose band around the Section 6.1 targets.
        let ont = OntologyGenerator::new(GeneratorConfig::snomed_like(20_000)).generate();
        let s = OntologyStats::compute(&ont);
        assert!(
            (3.0..7.0).contains(&s.avg_children_internal),
            "internal fanout {:.2} out of band",
            s.avg_children_internal
        );
        assert!(
            (2.0..32.0).contains(&s.avg_paths_per_concept),
            "paths/concept {:.2} out of band",
            s.avg_paths_per_concept
        );
        assert!(s.avg_path_length > 5.0, "path length {:.2} too shallow", s.avg_path_length);
        assert!(s.max_paths_per_concept <= 32);
    }

    #[test]
    fn labels_are_unique() {
        let ont = OntologyGenerator::new(GeneratorConfig::small(1_000)).generate();
        let mut seen = std::collections::HashSet::new();
        for c in ont.concepts() {
            assert!(seen.insert(ont.label(c).to_string()), "duplicate label");
        }
    }
}
