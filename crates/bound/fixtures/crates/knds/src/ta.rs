//! Seeded-violation fixture: TA fallback with an unsized spill buffer
//! and a bare directive that must not count as a proof.

/// TA-style fallback entry point; seeded B03 (unsized growth) and
/// seeded B01 (a bare `bound: proven` with no justification).
pub fn rds_with(docs: &[u64], k: usize) -> usize {
    let mut spill = Vec::new();
    for &d in docs {
        spill.push(d);
    }
    // bound: proven
    let cap = spill.len() as u32;
    sized_top(docs, k) + cap as usize
}

/// Clean twin: capacity established at construction, growth justified.
fn sized_top(docs: &[u64], k: usize) -> usize {
    let mut top = Vec::with_capacity(k);
    for &d in docs.iter().take(k) {
        // bound: sized — at most k entries, capacity reserved above
        top.push(d);
    }
    top.len()
}
