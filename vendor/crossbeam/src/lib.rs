//! Offline subset of the `crossbeam` crate.
//!
//! Provides `queue::SegQueue` with crossbeam's API over a mutex-protected
//! deque — correct under contention, merely not lock-free. The sandbox has
//! no registry access; drop the `[patch.crates-io]` entry to use the real
//! crate.

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded MPMC queue (API subset of `crossbeam::queue::SegQueue`).
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        pub fn new() -> Self {
            SegQueue { inner: Mutex::new(VecDeque::new()) }
        }

        pub fn push(&self, value: T) {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).pop_front()
        }

        pub fn len(&self) -> usize {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::queue::SegQueue;

    #[test]
    fn fifo_across_threads() {
        let q = std::sync::Arc::new(SegQueue::new());
        for i in 0..100 {
            q.push(i);
        }
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut got = 0;
                    while q.pop().is_some() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
        assert!(q.is_empty());
    }
}
