//! Property: the race analysis is independent of file collection order.
//!
//! Effect extraction, the lock-order graph, and the rule fixpoints must
//! produce byte-identical findings and proof statistics however the
//! source walker happens to order the files — the allowlist ratchet
//! depends on exact counts, so any order sensitivity would make the
//! gate flaky.

use cbr_flow::graph::CrateDeps;
use cbr_flow::scanner::SourceFile;
use proptest::prelude::*;

const SVC: &str = include_str!("../fixtures/crates/svc/src/lib.rs");
const SNAP: &str = include_str!("../fixtures/crates/core/src/snapshot.rs");
const EXTRA: &str = "pub fn helper(m: &Mutex<u32>) { let _g = m.lock(); }\n";

type Keyed = (Vec<(String, String, usize, String)>, usize, usize);

fn run_in_order(order: &[usize; 3]) -> Keyed {
    let files = [
        ("crates/svc/src/lib.rs", SVC),
        ("crates/core/src/snapshot.rs", SNAP),
        ("crates/extra/src/lib.rs", EXTRA),
    ];
    let sources: Vec<SourceFile> =
        order.iter().map(|&i| SourceFile::parse(files[i].0, files[i].1)).collect();
    let rr = cbr_race::analyze(sources, "", "race.allow", &CrateDeps::default(), true);
    let mut keyed: Vec<_> = rr
        .report
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.file.clone(), f.line, f.message.clone()))
        .collect();
    keyed.sort();
    (keyed, rr.stats.r04.r04_reachable_fns, rr.stats.r04.r04_lock_acquisitions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn analysis_is_permutation_stable(k in 0usize..6) {
        let perms: [[usize; 3]; 6] =
            [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let baseline = run_in_order(&perms[0]);
        prop_assert!(!baseline.0.is_empty(), "fixture findings must be non-empty");
        prop_assert_eq!(baseline, run_in_order(&perms[k]));
    }
}
