//! `cbr-race`: whole-program static lock-discipline and
//! epoch-publication analysis over the `sched::sync` facade.
//!
//! `cbr-sched` explores interleavings *dynamically* — it can only
//! witness bugs in paths the harnesses drive. This crate is the static
//! complement: it reuses `cbr-flow`'s scanner, item parser, and call
//! graph as a library, extracts per-function concurrency-effect
//! [`summary`] data (lock acquisitions with hold spans, blocking
//! operations, publishes, pool ops, spawn spans), and propagates them
//! over the whole program to check the [`rules`]:
//!
//! * **R01** — acyclic lock-order graph; no split critical sections;
//! * **R02** — no blocking operation transitively reachable while a
//!   lock is held;
//! * **R03** — `Published::publish` only inside writer critical
//!   sections;
//! * **R04** — the lock-free read path, proven: zero lock acquisitions
//!   transitively reachable from the snapshot query roots;
//! * **R05** — pool pop/push balance across spawn boundaries.
//!
//! Findings ratchet through `race.allow` (same exact-count grammar as
//! `flow.allow`); the seeded fixture tree under `crates/race/fixtures`
//! proves every rule can fire.
//!
//! ```sh
//! cargo run -p cbr-race                          # analyze the workspace
//! cargo run -p cbr-race -- --json                # machine-readable report
//! cargo run -p cbr-race -- --fixtures --expect-findings  # prove non-vacuity
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rules;
pub mod summary;

pub use cbr_flow::allowlist;
use cbr_flow::graph::{CrateDeps, Graph};
use cbr_flow::parser::Workspace;
use cbr_flow::report::Report;
use cbr_flow::scanner::SourceFile;
use cbr_flow::ParsedWorkspace;
use std::path::Path;

/// The race report: findings plus the R04 lock-free-read proof stats.
#[derive(Debug)]
pub struct RaceStats {
    /// Functions with bodies in the parsed workspace.
    pub functions: usize,
    /// Call-graph edges the propagation ran over.
    pub edges: usize,
    /// R04 proof statistics.
    pub r04: rules::RuleStats,
}

/// Findings (allowlist applied) plus analysis statistics.
#[derive(Debug)]
pub struct RaceReport {
    /// Findings and passed-rule lines.
    pub report: Report,
    /// Graph size and the R04 proof statistics.
    pub stats: RaceStats,
}

impl RaceReport {
    /// Human-readable report with the proof summary line.
    pub fn render_text(&self) -> String {
        format!(
            "{}race: {} fns, {} edges; R04 proof: {} roots, {} reachable fns, \
             {} lock acquisitions\n",
            self.report.render_text(),
            self.stats.functions,
            self.stats.edges,
            self.stats.r04.r04_roots,
            self.stats.r04.r04_reachable_fns,
            self.stats.r04.r04_lock_acquisitions,
        )
    }

    /// JSON report: the shared [`Report`] shape plus the proof stats. A
    /// clean run is only meaningful together with non-vacuous stats —
    /// `"r04_roots"` must be positive and `"r04_lock_acquisitions"`
    /// zero for the lock-free-read claim to hold.
    pub fn render_json(&self) -> String {
        let base = self.report.render_json();
        let trimmed = base.trim_end().trim_end_matches('}').trim_end().trim_end_matches(',');
        format!(
            "{trimmed},\n  \"functions\": {},\n  \"edges\": {},\n  \"r04_roots\": {},\n  \
             \"r04_reachable_fns\": {},\n  \"r04_lock_acquisitions\": {}\n}}\n",
            self.stats.functions,
            self.stats.edges,
            self.stats.r04.r04_roots,
            self.stats.r04.r04_reachable_fns,
            self.stats.r04.r04_lock_acquisitions,
        )
    }
}

/// Analyzes scanned sources with an allowlist under a crate-dependency
/// constraint. `fixtures` widens the effect scope from the facade
/// crates to every file (fixture trees use their own crate names).
pub fn analyze(
    files: Vec<SourceFile>,
    allow: &str,
    origin: &str,
    deps: &CrateDeps,
    fixtures: bool,
) -> RaceReport {
    let ws = Workspace::parse(files);
    let graph = Graph::build(&ws, deps);
    let pw = ParsedWorkspace { ws, deps: deps.clone(), graph };
    analyze_parsed(&pw, allow, origin, fixtures)
}

/// [`analyze`] over an already-parsed workspace (the parse-once path).
pub fn analyze_parsed(
    pw: &ParsedWorkspace,
    allow: &str,
    origin: &str,
    fixtures: bool,
) -> RaceReport {
    let (ws, graph) = (&pw.ws, &pw.graph);
    let fx = summary::extract(ws, graph, fixtures);
    let (findings, r04) = rules::run(ws, graph, &fx);
    let findings = allowlist::ratchet(findings, allow, origin);

    let mut report = Report { findings, passed: Vec::new() };
    if report.ok() {
        for rule in ["R01", "R02", "R03", "R04", "R05"] {
            report.passed.push(format!(
                "race {rule} ({} fns, {} roots, {} reachable)",
                ws.fns.len(),
                r04.r04_roots,
                r04.r04_reachable_fns
            ));
        }
    }
    RaceReport {
        report,
        stats: RaceStats { functions: graph.stats.functions, edges: graph.stats.edges, r04 },
    }
}

/// Runs the race analysis over the real workspace with `race.allow`.
pub fn run_workspace(root: &Path) -> RaceReport {
    run_parsed(root, &ParsedWorkspace::load(root))
}

/// [`run_workspace`] over a shared [`ParsedWorkspace`].
pub fn run_parsed(root: &Path, pw: &ParsedWorkspace) -> RaceReport {
    let allow = allowlist::load(root, "race.allow");
    analyze_parsed(pw, &allow, "race.allow", false)
}

/// Runs the race analysis over the seeded-violation fixture tree (no
/// allowlist — every seeded finding must surface — and no dependency
/// constraint, since the fixture tree has no manifests).
pub fn run_fixtures(root: &Path) -> RaceReport {
    analyze(
        cbr_flow::collect_sources(&root.join("crates/race/fixtures")),
        "",
        "race.allow",
        &CrateDeps::default(),
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_flow::workspace_root;

    /// The race lint must be silent on its own tree modulo `race.allow`.
    #[test]
    fn current_tree_is_clean() {
        let rr = run_workspace(&workspace_root());
        assert!(rr.report.ok(), "race findings on the current tree:\n{}", rr.render_text());
    }

    /// The acceptance gate: the lock-free read path is *proven*, not
    /// vacuously passed — both snapshot roots matched, a real slice of
    /// the workspace is reachable from them, and none of it acquires a
    /// lock.
    #[test]
    fn r04_proves_the_lock_free_read_path() {
        let rr = run_workspace(&workspace_root());
        assert_eq!(rr.stats.r04.r04_roots, 2, "rds_with + sds_with on EngineSnapshot");
        assert_eq!(
            rr.stats.r04.r04_lock_acquisitions,
            0,
            "snapshot queries must stay lock-free:\n{}",
            rr.render_text()
        );
        assert!(
            rr.stats.r04.r04_reachable_fns >= 10,
            "the proof must cover the kNDS machinery, got {} fns",
            rr.stats.r04.r04_reachable_fns
        );
    }

    /// Cross-validation with the dynamic checker: the bugs `cbr-sched`
    /// witnesses under `--features seeded-races` are caught statically —
    /// the lock inversion as an R01 cycle, the split critical section as
    /// an R01 lost-update, both with R02 findings for the nested
    /// acquisitions. (These live in `race.allow`, so the raw run is
    /// inspected before the ratchet.)
    #[test]
    fn seeded_schedrun_races_are_caught_statically() {
        let root = workspace_root();
        let deps = cbr_flow::crate_deps(&cbr_flow::collect_manifests(&root));
        let rr = analyze(cbr_flow::collect_sources(&root), "", "race.allow", &deps, false);
        let harness = "crates/schedrun/src/harness.rs";
        let has = |rule: &str, needle: &str| {
            rr.report
                .findings
                .iter()
                .any(|f| f.rule == rule && f.file == harness && f.message.contains(needle))
        };
        assert!(has("R01", "lock-order cycle"), "inversion not caught:\n{}", rr.render_text());
        assert!(has("R01", "split critical section"), "lost update not caught");
        assert!(has("R02", "while holding"), "nested acquire not caught");
    }

    /// The facade annotations are the analysis axioms; `real.rs` and
    /// `model.rs` implement the same API, so a function annotated in one
    /// must carry identical directives in the other.
    #[test]
    fn facade_annotations_agree_between_real_and_model() {
        use cbr_flow::parser::Workspace;
        use std::collections::BTreeMap;
        let files = cbr_flow::collect_sources(&workspace_root());
        let ws = Workspace::parse(files);
        let dirs = summary::directives(&ws);
        let mut sides: [BTreeMap<String, String>; 2] = [BTreeMap::new(), BTreeMap::new()];
        for (id, f) in ws.fns.iter().enumerate() {
            let side = match ws.files[f.file].rel.as_str() {
                "crates/sched/src/sync/real.rs" => 0,
                "crates/sched/src/sync/model.rs" => 1,
                _ => continue,
            };
            let d = dirs[id];
            if d.any() {
                let key = format!("{}::{}", f.self_ty.as_deref().unwrap_or(""), f.name);
                sides[side].insert(key, format!("{d:?}"));
            }
        }
        assert!(!sides[0].is_empty(), "real.rs carries race directives");
        assert_eq!(sides[0], sides[1], "real.rs and model.rs annotations diverge");
    }

    /// The seeded fixture tree fires every rule with exact counts —
    /// the non-vacuity proof `--expect-findings` builds on, pinned
    /// tighter here so a rule silently losing a case regresses loudly.
    #[test]
    fn fixtures_fire_every_rule_with_exact_counts() {
        let rr = run_fixtures(&workspace_root());
        let count = |rule: &str| rr.report.findings.iter().filter(|f| f.rule == rule).count();
        assert_eq!(count("R01"), 3, "two cycles + one split:\n{}", rr.render_text());
        assert_eq!(count("R02"), 4, "nested acquisitions under held guards");
        assert_eq!(count("R03"), 1, "only the unguarded publish");
        assert_eq!(count("R04"), 1, "the smuggled snapshot lock");
        assert_eq!(count("R05"), 2, "leaky pop + cross-thread push");
        assert_eq!(count("RACE"), 0, "fixture roots keep the meta-rule quiet");
        assert_eq!(rr.stats.r04.r04_roots, 2);
        assert_eq!(rr.stats.r04.r04_lock_acquisitions, 1);
    }

    #[test]
    fn json_report_carries_the_proof_stats() {
        let rr = run_workspace(&workspace_root());
        let json = rr.render_json();
        for key in ["\"ok\"", "\"r04_roots\"", "\"r04_reachable_fns\"", "\"r04_lock_acquisitions\""]
        {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
    }
}
