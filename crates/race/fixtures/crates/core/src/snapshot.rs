//! Seeded R04 violation: a lock acquisition reachable from the
//! snapshot query roots.
//!
//! This file mirrors the real `core::snapshot` module shape so the
//! [`ROOT_SPECS`](cbr_race::rules::ROOT_SPECS) match — which also keeps
//! the `RACE` meta-rule quiet in the fixture run, proving the root
//! matching itself is exercised.

/// Fixture snapshot with a lock smuggled behind the query path.
pub struct EngineSnapshot {
    guard: Mutex<u32>,
}

impl EngineSnapshot {
    /// Query root: reaches `locked_helper`, which acquires. R04.
    pub fn rds_with(&self) -> u32 {
        self.locked_helper()
    }

    /// Query root: stays lock-free — no finding from this one.
    pub fn sds_with(&self) -> u32 {
        self.plain_helper()
    }

    fn locked_helper(&self) -> u32 {
        let _g = self.guard.lock();
        1
    }

    fn plain_helper(&self) -> u32 {
        2
    }
}
