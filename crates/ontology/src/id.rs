//! Compact concept identifiers.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier of a concept within one [`Ontology`](crate::Ontology).
///
/// Identifiers are assigned contiguously from `0` in insertion order, so they
/// can index directly into per-concept arrays (`Vec<T>` keyed by concept).
/// They are meaningless across different ontologies.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ConceptId(pub u32);

impl ConceptId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an identifier from a dense index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "concept index overflow");
        ConceptId(index as u32)
    }
}

impl fmt::Debug for ConceptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for ConceptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u32> for ConceptId {
    fn from(v: u32) -> Self {
        ConceptId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_index() {
        let id = ConceptId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, ConceptId(42));
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(ConceptId(1) < ConceptId(2));
        assert_eq!(ConceptId(7), ConceptId::from(7));
    }

    #[test]
    fn debug_format_is_compact() {
        assert_eq!(format!("{:?}", ConceptId(3)), "c3");
        assert_eq!(format!("{}", ConceptId(3)), "c3");
    }
}
