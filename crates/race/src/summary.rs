//! Per-function concurrency-effect summaries.
//!
//! The race rules run on a small vocabulary of *effects* extracted from
//! every function body: lock acquisitions (with the span over which the
//! guard is held), blocking operations, `Published` publishes, atomic
//! epoch loads, pool pops/pushes, and spawn argument spans. Extraction
//! is tractable because audit rule A07 forces the domain crates through
//! the `sched::sync` facade — every concurrency primitive a scoped
//! function can touch is one of a dozen facade calls.
//!
//! Two classification channels feed the summaries:
//!
//! 1. **Lexical** — distinctive facade spellings at the call site:
//!    `.lock()`, `.wait(..)`, empty-argument `.join()`, free `scope(..)`,
//!    `spawn(..)`, `.publish(..)`, `.pop()`/`.push(..)` on a receiver
//!    naming a pool, and `.read()`/`.write()` on a declared `RwLock`
//!    field. This channel works even on fixture trees where the facade
//!    itself is absent.
//! 2. **Directives** — `// race: <effect>` annotations on the facade
//!    functions in `real.rs`/`model.rs`/`published.rs` (the analysis
//!    axioms), consulted through the resolved call graph. A call site
//!    whose target carries a directive inherits that effect even when
//!    the spelling is unusual (path-qualified `sched::sync::spawn`).
//!
//! Atomic operations on declared atomic fields (`self.epoch.load(..)`)
//! are *suppressed*: `load` collides with `Published::load` under the
//! call graph's conservative name dispatch, and following that edge
//! would manufacture a lock acquisition out of a lock-free atomic read.
//! Suppressed sites are excluded from every reachability propagation.

use cbr_flow::graph::Graph;
use cbr_flow::parser::{has_directive, CallSite, FnItem, Workspace};
use cbr_flow::scanner::{is_ident_byte, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// Files whose functions get effect summaries in a real-workspace run.
/// The domain crates go through the facade (audit A07), and the facade's
/// own cell types live under `sched/src/sync/`; the scheduler internals
/// (`rt.rs`, `explore.rs`) implement the model checker itself and are
/// not part of the program under analysis.
const EFFECT_SCOPE: [&str; 5] = [
    "crates/core/src/",
    "crates/knds/src/",
    "crates/index/src/",
    "crates/schedrun/src/",
    "crates/sched/src/sync/",
];

/// The facade implementations themselves: their bodies wrap foreign
/// primitives, so they are described by `// race:` directives instead of
/// being scanned.
const AXIOM_FILES: [&str; 2] = ["crates/sched/src/sync/real.rs", "crates/sched/src/sync/model.rs"];

/// Atomic read-modify-write / load / store method names whose dispatch
/// is suppressed on declared atomic fields.
const ATOMIC_METHODS: [&str; 7] =
    ["load", "store", "fetch_add", "fetch_sub", "fetch_or", "swap", "compare_exchange"];

/// One lock acquisition and the span over which its guard is held.
#[derive(Debug, Clone)]
pub struct Acquire {
    /// Byte offset of the acquiring method name.
    pub at: usize,
    /// Normalized lock identity: `Type::field` for `self.field` locks,
    /// `module::fn::var` (clone-aliases resolved) for locals.
    pub lock: String,
    /// Exclusive (mutex / write) rather than shared (read).
    pub exclusive: bool,
    /// Byte span `(from, to]` over which the guard is held: to the end
    /// of the innermost enclosing block for a let-bound guard (truncated
    /// at an explicit `drop(guard)`), to the end of the statement for a
    /// temporary.
    pub span: (usize, usize),
    /// Statement-temporary guard (deref or argument position).
    pub temporary: bool,
    /// `*x.lock()` — reads the protected value through a temporary.
    pub deref_read: bool,
    /// `*x.lock() = ..` — writes the protected value through a temporary.
    pub deref_write: bool,
}

/// The concurrency effects of one function body.
#[derive(Debug, Default)]
pub struct FnEffects {
    /// Lock acquisitions with hold spans.
    pub acquires: Vec<Acquire>,
    /// Blocking operations: `(site, description)`. Acquisitions are
    /// repeated here (an acquire can block on contention).
    pub blocking: Vec<(usize, String)>,
    /// `Published::publish`/`publish_arc` call sites.
    pub publishes: Vec<usize>,
    /// Atomic epoch loads (`self.epoch.load(..)`, `.epoch()`).
    pub epoch_loads: Vec<usize>,
    /// Pool pops: `(site, receiver chain)`.
    pub pool_pops: Vec<(usize, String)>,
    /// Pool pushes: `(site, receiver chain)`.
    pub pool_pushes: Vec<(usize, String)>,
    /// Spawn-call argument spans `(open paren, close paren)`.
    pub spawn_spans: Vec<(usize, usize)>,
    /// Whether the function was inside the effect scope at all.
    pub in_scope: bool,
}

/// Effects for every function, aligned with `Workspace::fns`.
#[derive(Debug)]
pub struct Effects {
    /// Per-function summaries.
    pub fns: Vec<FnEffects>,
    /// Per function, per call index: atomic-field operations excluded
    /// from every propagation (their name-dispatch targets are bogus).
    pub suppressed: Vec<Vec<bool>>,
}

/// The `// race:` directive kinds a facade function can carry.
#[derive(Debug, Default, Clone, Copy)]
pub struct Directives {
    /// `race: acquire` — exclusive lock acquisition.
    pub acquire: bool,
    /// `race: acquire-shared` — shared lock acquisition.
    pub acquire_shared: bool,
    /// `race: blocking` — waits for another thread.
    pub blocking: bool,
    /// `race: spawn` — runs its closure argument on another thread.
    pub spawn: bool,
    /// `race: pool-op` — pool pop/push.
    pub pool_op: bool,
    /// `race: publish` — epoch publication.
    pub publish: bool,
}

impl Directives {
    /// Whether any directive is present.
    pub fn any(&self) -> bool {
        self.acquire
            || self.acquire_shared
            || self.blocking
            || self.spawn
            || self.pool_op
            || self.publish
    }
}

/// Reads the `// race:` directives for every function in the workspace.
pub fn directives(ws: &Workspace) -> Vec<Directives> {
    ws.fns
        .iter()
        .map(|f| {
            let text = &ws.files[f.file].text;
            let shared = has_directive(text, f.decl, "race: acquire-shared");
            Directives {
                acquire: !shared && has_directive(text, f.decl, "race: acquire"),
                acquire_shared: shared,
                blocking: has_directive(text, f.decl, "race: blocking"),
                spawn: has_directive(text, f.decl, "race: spawn"),
                pool_op: has_directive(text, f.decl, "race: pool-op"),
                publish: has_directive(text, f.decl, "race: publish"),
            }
        })
        .collect()
}

/// Field names declared with any of `needles` as their type prefix
/// (`value: RwLock<..>` yields `value`). Field-name granularity is a
/// deliberate approximation: the workspace keeps lock/atomic field names
/// distinctive, and the `self.` receiver requirement at the use site
/// bounds the blast radius of a collision.
fn field_names(code: &str, needles: &[&str]) -> BTreeSet<String> {
    let bytes = code.as_bytes();
    let mut out = BTreeSet::new();
    for needle in needles {
        let mut from = 0;
        while let Some(rel) = code[from..].find(needle) {
            let at = from + rel;
            from = at + 1;
            let mut p = at;
            while p > 0 && bytes[p - 1].is_ascii_whitespace() {
                p -= 1;
            }
            if p == 0 || bytes[p - 1] != b':' {
                continue;
            }
            p -= 1;
            if p > 0 && bytes[p - 1] == b':' {
                continue; // `::` path, not a field declaration
            }
            while p > 0 && bytes[p - 1].is_ascii_whitespace() {
                p -= 1;
            }
            let e = p;
            while p > 0 && is_ident_byte(bytes[p - 1]) {
                p -= 1;
            }
            if p < e {
                out.insert(code[p..e].to_string());
            }
        }
    }
    out
}

/// Lock-bearing and atomic field names declared across the scoped files.
#[derive(Debug, Default)]
pub struct FieldIndex {
    /// Fields declared `: RwLock<..>`.
    pub rwlock: BTreeSet<String>,
    /// Fields declared with an atomic integer type.
    pub atomic: BTreeSet<String>,
}

fn field_index(ws: &Workspace, fixtures: bool) -> FieldIndex {
    let mut idx = FieldIndex::default();
    for file in &ws.files {
        if !fixtures && !in_effect_scope(&file.rel) {
            continue;
        }
        idx.rwlock.extend(field_names(&file.code, &["RwLock<"]));
        idx.atomic.extend(field_names(&file.code, &["AtomicU64", "AtomicUsize", "AtomicBool"]));
    }
    idx
}

fn in_effect_scope(rel: &str) -> bool {
    EFFECT_SCOPE.iter().any(|p| rel.starts_with(p)) && !AXIOM_FILES.contains(&rel)
}

/// Start of the `.`-chained receiver expression feeding the method call
/// whose name token sits at `at` (steps back over `.ident` hops).
fn chain_start(code: &str, at: usize) -> usize {
    let bytes = code.as_bytes();
    let mut p = at;
    while p > 0 && bytes[p - 1] == b'.' {
        p -= 1;
        while p > 0 && is_ident_byte(bytes[p - 1]) {
            p -= 1;
        }
    }
    p
}

/// Byte offset of the call's opening parenthesis.
fn open_paren(code: &str, call: &CallSite) -> usize {
    let bytes = code.as_bytes();
    let mut j = at_name_end(call);
    while j < call.close && bytes[j] != b'(' {
        j += 1;
    }
    j
}

fn at_name_end(call: &CallSite) -> usize {
    call.at + call.name.len()
}

/// Whether the call's argument list is empty *in the original text* (the
/// code view blanks string literals, which would make `path.join(" -> ")`
/// indistinguishable from a thread `handle.join()`).
fn empty_args(file: &SourceFile, call: &CallSite) -> bool {
    let open = open_paren(&file.code, call);
    open < call.close && file.text[open + 1..call.close].trim().is_empty()
}

/// Statement bounds around a call: from just after the previous `;`/`{`/`}`
/// to the first `;` after the call's close (both clipped to the body).
fn stmt_bounds(code: &str, body: (usize, usize), at: usize, close: usize) -> (usize, usize) {
    let start = code[body.0..at].rfind([';', '{', '}']).map_or(body.0, |p| body.0 + p + 1);
    let end = code[close..=body.1].find(';').map_or(body.1, |p| close + p);
    (start, end)
}

/// End of the innermost block enclosing `at` within `body`.
fn enclosing_block_end(code: &str, body: (usize, usize), at: usize) -> usize {
    let bytes = code.as_bytes();
    let mut stack: Vec<usize> = Vec::new();
    let mut best = body.1;
    let mut width = usize::MAX;
    let end = body.1.min(bytes.len() - 1);
    for (i, &b) in bytes.iter().enumerate().take(end + 1).skip(body.0) {
        match b {
            b'{' => stack.push(i),
            b'}' => {
                if let Some(open) = stack.pop() {
                    if open < at && at < i && i - open < width {
                        best = i;
                        width = i - open;
                    }
                }
            }
            _ => {}
        }
    }
    best
}

/// Splits `s` on top-level commas (ignoring nested brackets).
fn split_top_commas(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, b) in s.bytes().enumerate() {
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// Clone-alias map for one function body: `let a1 = a.clone();` and the
/// tuple form `let (a1, b1) = (a.clone(), b.clone());` map the alias back
/// to the root binding, so two clones of one `Arc<Mutex<..>>` normalize
/// to a single lock identity.
pub fn alias_map(file: &SourceFile, f: &FnItem) -> BTreeMap<String, String> {
    let code = &file.code;
    let mut out = BTreeMap::new();
    let mut seen_stmts = BTreeSet::new();
    for call in &f.calls {
        if !call.method || call.name != "clone" {
            continue;
        }
        let (start, end) = stmt_bounds(code, f.body, call.at, call.close);
        if !seen_stmts.insert(start) {
            continue;
        }
        let stmt = code[start..end].trim();
        let Some(rest) = stmt.strip_prefix("let ") else {
            continue;
        };
        let Some(eq) = top_level_eq(rest) else {
            continue;
        };
        let (lhs, rhs) = (rest[..eq].trim(), rest[eq + 1..].trim());
        let pairs: Vec<(&str, &str)> = if lhs.starts_with('(') && rhs.starts_with('(') {
            // Strip exactly one layer of parens: `(a.clone(), b.clone())`
            // must keep the inner calls' own closing parens intact.
            let lhs = lhs.strip_prefix('(').and_then(|s| s.strip_suffix(')')).unwrap_or(lhs);
            let rhs = rhs.strip_prefix('(').and_then(|s| s.strip_suffix(')')).unwrap_or(rhs);
            split_top_commas(lhs).into_iter().zip(split_top_commas(rhs)).collect()
        } else {
            vec![(lhs, rhs)]
        };
        for (pat, expr) in pairs {
            let pat = pat.trim().trim_start_matches("mut ").trim();
            let expr = expr.trim();
            let Some(base) = expr.strip_suffix(".clone()") else {
                continue;
            };
            let base = base.trim();
            if !pat.is_empty()
                && pat.bytes().all(is_ident_byte)
                && !base.is_empty()
                && base.bytes().all(|b| is_ident_byte(b) || b == b'.')
            {
                out.insert(pat.to_string(), base.to_string());
            }
        }
    }
    out
}

/// Offset of the first top-level `=` (not `==`, `<=`, …) in `s`.
fn top_level_eq(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut depth = 0i32;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' | b'{' | b'<' => depth += 1,
            b')' | b']' | b'}' | b'>' => depth -= 1,
            b'=' if depth == 0 => {
                let prev = if i > 0 { bytes[i - 1] } else { b' ' };
                let next = bytes.get(i + 1).copied().unwrap_or(b' ');
                if prev != b'=' && prev != b'!' && prev != b'<' && prev != b'>' && next != b'=' {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Normalized lock identity for a receiver chain inside function `f`.
fn lock_identity(f: &FnItem, receiver: &str, aliases: &BTreeMap<String, String>) -> Option<String> {
    let mut r = receiver.to_string();
    for _ in 0..8 {
        match aliases.get(&r) {
            Some(base) if *base != r => r = base.clone(),
            _ => break,
        }
    }
    if r.is_empty() || r == "self" {
        return None;
    }
    if let Some(rest) = r.strip_prefix("self.") {
        let ty = f.self_ty.as_deref().unwrap_or("Self");
        return Some(format!("{ty}::{rest}"));
    }
    Some(format!("{}::{}::{}", f.module, f.name, r))
}

/// Last `.`-separated segment of a receiver chain.
fn last_segment(receiver: &str) -> &str {
    receiver.rsplit('.').next().unwrap_or(receiver)
}

/// Extracts effect summaries for every function.
pub fn extract(ws: &Workspace, graph: &Graph, fixtures: bool) -> Effects {
    let dirs = directives(ws);
    let fields = field_index(ws, fixtures);
    let mut fns = Vec::with_capacity(ws.fns.len());
    let mut suppressed = Vec::with_capacity(ws.fns.len());

    for (id, f) in ws.fns.iter().enumerate() {
        let file = &ws.files[f.file];
        let mut fx =
            FnEffects { in_scope: fixtures || in_effect_scope(&file.rel), ..FnEffects::default() };
        let mut supp = vec![false; f.calls.len()];
        if f.is_test {
            fns.push(fx);
            suppressed.push(supp);
            continue;
        }
        let aliases = alias_map(file, f);
        let code = &file.code;
        for (ci, call) in f.calls.iter().enumerate() {
            // Atomic-field operations: record the epoch load, kill the
            // bogus name-dispatch edge (`epoch.load` is not
            // `Published::load`).
            if call.method
                && ATOMIC_METHODS.contains(&call.name.as_str())
                && fields.atomic.contains(last_segment(&call.receiver))
            {
                supp[ci] = true;
                if call.name == "load" && fx.in_scope && !file.is_test(call.at) {
                    fx.epoch_loads.push(call.at);
                }
                continue;
            }
            if !fx.in_scope || file.is_test(call.at) {
                continue;
            }

            let mut kinds = SiteKinds::default();
            classify_lexical(file, f, call, &fields, &aliases, &mut kinds, &mut fx);
            classify_directives(ws, graph, &dirs, id, ci, f, call, &aliases, &mut kinds, &mut fx);
            let _ = code; // bodies already consumed through helpers
        }
        fns.push(fx);
        suppressed.push(supp);
    }
    Effects { fns, suppressed }
}

/// Effect kinds already attributed to one call site (dedups the lexical
/// and directive channels).
#[derive(Debug, Default)]
struct SiteKinds {
    acquire: bool,
    blocking: bool,
    spawn: bool,
    publish: bool,
    pool: bool,
}

fn push_acquire(
    f: &FnItem,
    file: &SourceFile,
    call: &CallSite,
    exclusive: bool,
    aliases: &BTreeMap<String, String>,
    fx: &mut FnEffects,
) -> bool {
    let Some(lock) = lock_identity(f, &call.receiver, aliases) else {
        return false;
    };
    let code = &file.code;
    let bytes = code.as_bytes();
    let (stmt_start, stmt_end) = stmt_bounds(code, f.body, call.at, call.close);
    let start = chain_start(code, call.at);
    let mut p = start;
    while p > stmt_start && bytes[p - 1].is_ascii_whitespace() {
        p -= 1;
    }
    let deref = p > stmt_start && bytes[p - 1] == b'*';
    let mut q = call.close + 1;
    while q < stmt_end && bytes[q].is_ascii_whitespace() {
        q += 1;
    }
    let deref_write = deref && bytes.get(q) == Some(&b'=') && bytes.get(q + 1) != Some(&b'=');
    let let_bound = code[stmt_start..start].trim_start().starts_with("let ") && !deref;

    let (temporary, span) = if let_bound {
        let block_end = enclosing_block_end(code, f.body, call.at);
        let binding = binding_name(&code[stmt_start..stmt_end]);
        let end = match binding {
            Some(name) => drop_site(code, (stmt_end, block_end), &name).unwrap_or(block_end),
            None => block_end,
        };
        (false, (stmt_end, end))
    } else {
        (true, (call.at, stmt_end))
    };

    fx.blocking.push((call.at, format!("lock acquisition `{lock}`")));
    fx.acquires.push(Acquire {
        at: call.at,
        lock,
        exclusive,
        span,
        temporary,
        deref_read: deref && !deref_write,
        deref_write,
    });
    true
}

/// The single-identifier binding of a `let name = ..` statement.
fn binding_name(stmt: &str) -> Option<String> {
    let rest = stmt.trim_start().strip_prefix("let ")?;
    let rest = rest.trim_start().trim_start_matches("mut ").trim_start();
    let end = rest.bytes().position(|b| !is_ident_byte(b)).unwrap_or(rest.len());
    let name = &rest[..end];
    (!name.is_empty()).then(|| name.to_string())
}

/// Offset of an explicit `drop(name)` within `range`, if any.
fn drop_site(code: &str, range: (usize, usize), name: &str) -> Option<usize> {
    let region = &code[range.0..range.1.min(code.len())];
    let mut from = 0;
    while let Some(rel) = region[from..].find("drop(") {
        let at = from + rel;
        from = at + 1;
        if at > 0 && is_ident_byte(region.as_bytes()[at - 1]) {
            continue;
        }
        let rest = &region[at + 5..];
        if let Some(close) = rest.find(')') {
            if rest[..close].trim() == name {
                return Some(range.0 + at);
            }
        }
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn classify_lexical(
    file: &SourceFile,
    f: &FnItem,
    call: &CallSite,
    fields: &FieldIndex,
    aliases: &BTreeMap<String, String>,
    kinds: &mut SiteKinds,
    fx: &mut FnEffects,
) {
    let name = call.name.as_str();
    match name {
        "lock" if call.method && empty_args(file, call) => {
            kinds.acquire = push_acquire(f, file, call, true, aliases, fx);
            kinds.blocking = kinds.acquire;
        }
        "write" | "read"
            if call.method
                && call.receiver.starts_with("self.")
                && fields.rwlock.contains(last_segment(&call.receiver)) =>
        {
            kinds.acquire = push_acquire(f, file, call, name == "write", aliases, fx);
            kinds.blocking = kinds.acquire;
        }
        "wait" if call.method => {
            fx.blocking.push((call.at, "condvar wait".to_string()));
            kinds.blocking = true;
        }
        "join" if call.method && empty_args(file, call) => {
            fx.blocking.push((call.at, "thread join".to_string()));
            kinds.blocking = true;
        }
        "scope" if !call.method => {
            fx.blocking.push((call.at, "scope join-all".to_string()));
            kinds.blocking = true;
        }
        "spawn" => {
            fx.spawn_spans.push((open_paren(&file.code, call), call.close));
            kinds.spawn = true;
        }
        "publish" | "publish_arc" if call.method => {
            fx.publishes.push(call.at);
            kinds.publish = true;
        }
        "epoch" if call.method && empty_args(file, call) => {
            fx.epoch_loads.push(call.at);
        }
        "pop"
            if call.method
                && empty_args(file, call)
                && call.receiver.to_lowercase().contains("pool") =>
        {
            fx.pool_pops.push((call.at, call.receiver.clone()));
            kinds.pool = true;
        }
        "push" if call.method && call.receiver.to_lowercase().contains("pool") => {
            fx.pool_pushes.push((call.at, call.receiver.clone()));
            kinds.pool = true;
        }
        _ => {}
    }
}

#[allow(clippy::too_many_arguments)]
fn classify_directives(
    ws: &Workspace,
    graph: &Graph,
    dirs: &[Directives],
    id: usize,
    ci: usize,
    f: &FnItem,
    call: &CallSite,
    aliases: &BTreeMap<String, String>,
    kinds: &mut SiteKinds,
    fx: &mut FnEffects,
) {
    let file = &ws.files[f.file];
    for &t in &graph.targets[id][ci] {
        let d = dirs[t];
        if !d.any() {
            continue;
        }
        if (d.acquire || d.acquire_shared) && !kinds.acquire {
            kinds.acquire = push_acquire(f, file, call, d.acquire, aliases, fx);
            kinds.blocking |= kinds.acquire;
        }
        if d.blocking && !kinds.blocking {
            fx.blocking.push((call.at, format!("call to blocking `{}`", ws.fns[t].name)));
            kinds.blocking = true;
        }
        if d.spawn && !kinds.spawn {
            fx.spawn_spans.push((open_paren(&file.code, call), call.close));
            kinds.spawn = true;
        }
        if d.publish && !kinds.publish {
            fx.publishes.push(call.at);
            kinds.publish = true;
        }
        if d.pool_op && !kinds.pool && call.receiver.to_lowercase().contains("pool") {
            match call.name.as_str() {
                "pop" => fx.pool_pops.push((call.at, call.receiver.clone())),
                "push" => fx.pool_pushes.push((call.at, call.receiver.clone())),
                _ => {}
            }
            kinds.pool = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_flow::graph::{CrateDeps, Graph};
    use cbr_flow::scanner::SourceFile;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::parse(files.iter().map(|(r, t)| SourceFile::parse(r, t)).collect())
    }

    fn effects_for(files: &[(&str, &str)]) -> (Workspace, Effects) {
        let w = ws(files);
        let g = Graph::build(&w, &CrateDeps::default());
        let e = extract(&w, &g, true);
        (w, e)
    }

    fn fx<'a>(w: &Workspace, e: &'a Effects, name: &str) -> &'a FnEffects {
        let id = w.fns.iter().position(|f| f.name == name).unwrap();
        &e.fns[id]
    }

    #[test]
    fn let_bound_guard_holds_to_block_end_and_truncates_at_drop() {
        let (w, e) = effects_for(&[(
            "crates/svc/src/lib.rs",
            "struct S { m: Mutex<u32> }\n\
             impl S {\n\
             fn held(&self) { let g = self.m.lock(); use_it(&g); after(); }\n\
             fn dropped(&self) { let g = self.m.lock(); drop(g); after(); }\n\
             }\n\
             fn use_it(_g: &u32) {}\nfn after() {}\n",
        )]);
        let held = &fx(&w, &e, "held").acquires[0];
        assert_eq!(held.lock, "S::m");
        assert!(held.exclusive && !held.temporary);
        let file = &w.files[0];
        let after_call = file.code.find("after();").unwrap();
        assert!(held.span.0 < after_call && after_call < held.span.1, "span covers the tail");
        let dropped = &fx(&w, &e, "dropped").acquires[0];
        let after2 = file.code.rfind("after();").unwrap();
        assert!(dropped.span.1 < after2, "drop(g) truncates the hold span");
    }

    #[test]
    fn temporaries_record_deref_reads_and_writes() {
        let (w, e) = effects_for(&[(
            "crates/svc/src/lib.rs",
            "fn rmw(n: &Mutex<u32>) { let v = *n.lock(); *n.lock() = v + 1; }\n",
        )]);
        let acq = &fx(&w, &e, "rmw").acquires;
        assert_eq!(acq.len(), 2);
        assert!(acq[0].temporary && acq[0].deref_read && !acq[0].deref_write);
        assert!(acq[1].temporary && acq[1].deref_write);
        assert_eq!(acq[0].lock, acq[1].lock);
    }

    #[test]
    fn clone_aliases_normalize_to_one_identity() {
        let (w, e) = effects_for(&[(
            "crates/svc/src/lib.rs",
            "fn two(a: Arc<Mutex<u32>>) {\n\
             let a1 = a.clone();\n\
             let _g1 = a1.lock();\n\
             let (a2, _x) = (a.clone(), 0);\n\
             let _g2 = a2.lock();\n\
             }\n",
        )]);
        let acq = &fx(&w, &e, "two").acquires;
        assert_eq!(acq.len(), 2);
        assert_eq!(acq[0].lock, acq[1].lock);
        assert_eq!(acq[0].lock, "svc::two::a");
    }

    #[test]
    fn join_spellings_disambiguate_on_text_args() {
        let (w, e) = effects_for(&[(
            "crates/svc/src/lib.rs",
            "fn j(h: H, parts: Vec<String>) { let _s = parts.join(\" -> \"); h.join(); }\n",
        )]);
        let f = fx(&w, &e, "j");
        assert_eq!(f.blocking.len(), 1, "only the empty-arg join blocks: {:?}", f.blocking);
        assert_eq!(f.blocking[0].1, "thread join");
    }

    #[test]
    fn atomic_field_ops_are_suppressed_not_acquires() {
        let (w, e) = effects_for(&[(
            "crates/svc/src/lib.rs",
            "struct P { epoch: AtomicU64, value: RwLock<u32> }\n\
             impl P {\n\
             fn load(&self) -> u64 { let g = self.value.read(); self.epoch.load(Acquire) }\n\
             }\n",
        )]);
        let id = w.fns.iter().position(|f| f.name == "load").unwrap();
        let f = &e.fns[id];
        assert_eq!(f.acquires.len(), 1);
        assert!(!f.acquires[0].exclusive, "read guard is shared");
        assert_eq!(f.epoch_loads.len(), 1);
        let ci = w.fns[id]
            .calls
            .iter()
            .position(|c| c.name == "load" && c.receiver == "self.epoch")
            .unwrap();
        assert!(e.suppressed[id][ci], "atomic load dispatch suppressed");
    }

    #[test]
    fn spawn_spans_and_pool_ops_are_recorded() {
        let (w, e) = effects_for(&[(
            "crates/svc/src/lib.rs",
            "fn go(pool: &Q) { spawn(|| { let w = pool.pop(); pool.push(w); }); }\n",
        )]);
        let f = fx(&w, &e, "go");
        assert_eq!(f.spawn_spans.len(), 1);
        assert_eq!(f.pool_pops.len(), 1);
        assert_eq!(f.pool_pushes.len(), 1);
        let (open, close) = f.spawn_spans[0];
        assert!(open < f.pool_pops[0].0 && f.pool_pops[0].0 < close);
    }

    #[test]
    fn real_mode_scopes_effects_to_the_facade_crates() {
        let w = ws(&[
            ("crates/ontology/src/x.rs", "fn out(m: &Mutex<u32>) { let _g = m.lock(); }\n"),
            ("crates/core/src/x.rs", "fn inside(m: &Mutex<u32>) { let _g = m.lock(); }\n"),
        ]);
        let g = Graph::build(&w, &CrateDeps::default());
        let e = extract(&w, &g, false);
        assert!(fx(&w, &e, "out").acquires.is_empty(), "ontology is out of scope");
        assert_eq!(fx(&w, &e, "inside").acquires.len(), 1);
    }
}
