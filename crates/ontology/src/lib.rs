//! Concept-hierarchy DAG substrate for concept-based document ranking.
//!
//! This crate implements the ontology layer that *Efficient Concept-based
//! Document Ranking* (Arvanitis, Wiley, Hristidis — EDBT 2014) builds on:
//!
//! * a rooted, labeled **concept DAG** ([`Ontology`]) representing an `is-a`
//!   hierarchy such as SNOMED-CT (Section 3.1 of the paper);
//! * **Dewey path addresses** ([`DeweyAddress`]) for every root-to-concept
//!   path, materialized in a [`PathTable`];
//! * the **valid-path semantic distance** between concepts
//!   ([`concept_distance`]): the length of the shortest path that passes
//!   through a common ancestor of the two concepts (Rada et al., restricted
//!   to ∧-shaped ascend-then-descend paths — Section 3.2);
//! * a calibrated **synthetic ontology generator** ([`generator`])
//!   reproducing the published SNOMED-CT shape statistics (296,433 concepts,
//!   4.53 average children, 9.78 Dewey paths per concept of average length
//!   14.1), used in place of the licence-gated SNOMED-CT release;
//! * the paper's own **Figure 3 fixture** ([`fixture::figure3`]), rebuilt
//!   from the Dewey addresses the paper lists in Table 1, which the test
//!   suites use as an exactness oracle.
//!
//! # Example
//!
//! ```
//! use cbr_ontology::{fixture, concept_distance};
//!
//! let fig3 = fixture::figure3();
//! let ont = &fig3.ontology;
//! let paths = ont.path_table();
//!
//! // Section 3.2: D(G, F) is 5, not 2, because a valid path must pass
//! // through a common ancestor (here the root A).
//! let d = concept_distance(&paths, fig3.concept("G"), fig3.concept("F"));
//! assert_eq!(d, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dewey;
pub mod distance;
pub mod dot;
pub mod error;
pub mod fixture;
pub mod generator;
pub mod graph;
pub mod hash;
pub mod ic;
pub mod id;
#[cfg(feature = "serde")]
pub mod ser;
pub mod stats;
pub mod subset;
pub mod validate;
pub mod weighted;

pub use dewey::{DeweyAddress, PathTable};
pub use distance::{concept_distance, concept_distance_graph, document_concept_distance};
pub use error::{OntologyError, Result};
pub use generator::{GeneratorConfig, OntologyGenerator};
pub use graph::{Ontology, OntologyBuilder};
pub use hash::{FxHashMap, FxHashSet};
pub use ic::{InformationContent, SemanticSimilarity};
pub use id::ConceptId;
pub use stats::OntologyStats;
pub use validate::OntologyViolation;
pub use weighted::EdgeWeights;
