//! Seeded-violation fixture: the snapshot read path truncates its
//! document count on one branch; the twin proves the bound.

/// Read-only snapshot handle over a frozen segment.
pub struct Snapshot {
    num_docs: usize,
}

impl Snapshot {
    /// RDS entry point; seeded B01: unchecked usize -> u32 narrowing.
    pub fn rds_with(&self) -> u32 {
        let cap = self.num_docs as u32;
        walk(cap)
    }

    /// SDS entry point; the clean twin carries a justified directive.
    pub fn sds_with(&self) -> u32 {
        // bound: proven — num_docs is validated against u32::MAX at build
        let cap = self.num_docs as u32;
        walk(cap)
    }
}

fn walk(cap: u32) -> u32 {
    cap
}
