//! Boundary properties for the checked stamp/slot packing helpers.
//!
//! The packed `(stamp << 32) | slot` entries back both the kNDS
//! workspace and the D-Radix concept-slot table; the bound rules (B01,
//! B02) accept those crates' raw bit-twiddling only because it routes
//! through `cbr_index::packing`. These tests pin the layout and the
//! round-trip at the `u32::MAX` edges, where an off-by-one in the shift
//! or mask would alias a stamp from 2³² epochs ago.

use cbr_corpus::DocId;
use cbr_index::packing;
use proptest::prelude::*;

/// Skews a raw sample toward both u32 edges: a third near zero, a third
/// near `u32::MAX`, a third anywhere.
fn edgy(raw: u32, sel: u32) -> u32 {
    match sel % 3 {
        0 => raw % 9,
        1 => u32::MAX - (raw % 9),
        _ => raw,
    }
}

proptest! {
    /// Pack/unpack is a bit-exact round trip with stamp in the high half
    /// and slot in the low half, including at the wrap point.
    #[test]
    fn pack_unpack_round_trips_at_the_edges(
        rs in any::<u32>(), ss in any::<u32>(), sel in any::<u32>(),
    ) {
        let (stamp, slot) = (edgy(rs, sel), edgy(ss, sel / 3));
        let packed = packing::pack_stamp_slot(stamp, slot);
        prop_assert_eq!(packing::unpack_stamp_slot(packed), (stamp, slot));
        prop_assert_eq!(packed >> 32, u64::from(stamp));
        prop_assert_eq!(packed & u64::from(u32::MAX), u64::from(slot));
    }

    /// An epoch rollover (stamp wrapping past u32::MAX) never collides
    /// with the previous epoch's entry for the same slot.
    #[test]
    fn adjacent_stamps_never_collide(
        stamp in any::<u32>(), ss in any::<u32>(), sel in any::<u32>(),
    ) {
        let slot = edgy(ss, sel);
        let a = packing::pack_stamp_slot(stamp, slot);
        let b = packing::pack_stamp_slot(stamp.wrapping_add(1), slot);
        prop_assert!(a != b, "stamps {} and +1 alias at slot {}", stamp, slot);
        prop_assert_eq!(packing::unpack_stamp_slot(a).1, packing::unpack_stamp_slot(b).1);
    }

    /// The checked narrowing helpers are the identity below the u32
    /// bound — CSR fence posts widen back to the exact length.
    #[test]
    fn csr_offsets_and_narrowing_are_lossless(raw in any::<u64>()) {
        let len = (raw % (u64::from(u32::MAX) + 1)) as usize;
        prop_assert_eq!(packing::csr_offset(len) as usize, len);
        prop_assert_eq!(packing::narrow_u32(len) as usize, len);
    }

    /// `doc_ordinal` inverts the segment-base offset for every global id
    /// a segment can address.
    #[test]
    fn doc_ordinal_inverts_the_segment_base(
        rf in any::<u32>(), ro in any::<u32>(), sel in any::<u32>(),
    ) {
        let ord = edgy(ro, sel);
        let first = rf.min(u32::MAX - ord);
        prop_assert_eq!(packing::doc_ordinal(DocId(first + ord), first), ord as usize);
    }
}
