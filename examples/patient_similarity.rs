//! Patient-similarity search — the paper's motivating SDS scenario
//! (Section 1): "a physician who wishes to be assisted in finding the
//! right medical treatment for a patient can search a database of EMRs for
//! patients with similar clinical indicators." Also the core operation of
//! patient-cohort identification for comparative-effectiveness studies.
//!
//! Demonstrates the symmetric document-document distance (Equation 3), the
//! effect of the error threshold εθ on work done (Figure 7's subject), and
//! the optional weighted variant of the distance.
//!
//! ```sh
//! cargo run --release --example patient_similarity
//! ```

use cbr_corpus::{CorpusGenerator, CorpusProfile, FilterConfig};
use cbr_dradix::Drc;
use concept_rank::prelude::*;
use concept_rank::EngineBuilder;

fn main() {
    let ontology = OntologyGenerator::new(GeneratorConfig::snomed_like(8_000)).generate();
    let corpus = CorpusGenerator::new(
        &ontology,
        CorpusProfile::patient_like().with_num_docs(200).with_mean_concepts(60.0),
    )
    .generate();
    let mut engine = EngineBuilder::new().filter(FilterConfig::default()).build(ontology, corpus);

    let patient = DocId(42);
    let profile = engine.document_concepts(patient).expect("exists");
    println!(
        "index patient {patient}: {} concepts, e.g. {:?}\n",
        profile.len(),
        profile.iter().take(3).map(|&c| engine.ontology().label(c)).collect::<Vec<_>>()
    );

    // Cohort: the 5 most similar patients under the symmetric distance.
    let cohort = engine.sds_by_doc(patient, 6).expect("non-empty record");
    println!("similarity cohort (Melton inter-patient distance, Eq. 3):");
    for s in &cohort.results {
        let marker = if s.doc == patient { "  (the index patient)" } else { "" };
        println!("  {}  Ddd = {:.3}{marker}", s.doc, s.distance);
    }

    // The error threshold trades traversal against DRC probes but never
    // changes the answer (Section 6.2's sensitivity analysis).
    println!("\nεθ sensitivity on this query:");
    println!("{:>5}  {:>10} {:>10} {:>12}", "εθ", "examined", "DRC", "top-1 dist");
    let mut reference: Option<f64> = None;
    for eps in [0.0, 0.25, 0.5, 0.75, 1.0] {
        engine.set_config(KndsConfig::default().with_error_threshold(eps));
        let r = engine.sds_by_doc(patient, 6).expect("non-empty record");
        let top = r.results[1].distance; // results[0] is the patient itself
        if let Some(expect) = reference {
            assert!((top - expect).abs() < 1e-9, "εθ must not change results");
        }
        reference = Some(top);
        println!(
            "{:>5.2}  {:>10} {:>10} {:>12.3}",
            eps, r.metrics.docs_examined, r.metrics.drc_calls, top
        );
    }

    // Weighted variant (Melton's general form): up-weight one distinctive
    // concept of the index patient and watch the neighbor distances shift.
    let mut weights = vec![1.0; engine.ontology().len()];
    weights[profile[0].index()] = 5.0;
    let mut drc = Drc::new(engine.ontology());
    let neighbor = cohort.results[1].doc;
    let nc = engine.document_concepts(neighbor).expect("exists");
    let plain = drc.document_document_distance(&nc, &profile);
    let weighted = drc.document_document_distance_weighted(&nc, &profile, Some(&weights));
    println!(
        "\nweighted distance to {neighbor}: {plain:.3} (equal weights) → {weighted:.3} \
         (concept {:?} ×5)",
        engine.ontology().label(profile[0])
    );
}
