//! The exploration driver: runs a harness closure under every schedule a
//! strategy produces, collects findings, and unions the lock-order graph
//! across schedules.

use crate::analysis::LockOrderGraph;
use crate::replay as sid;
use crate::rt::{self, Chooser, Exec, ExecRecord, FindingKind, Op, SchedAbort, StepOutcome, Tid};
use std::collections::BTreeSet;
use std::panic::AssertUnwindSafe;
use std::sync::Once;

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct Options {
    /// Maximum number of executions (complete or pruned) to run.
    pub budget: usize,
    /// Per-execution sync-point budget (runaway guard).
    pub max_steps: usize,
    /// Seed for the random-walk fallback.
    pub seed: u64,
    /// Fraction of the budget (numerator over 4) spent on exhaustive DFS
    /// before falling back to random walks; the walk only runs when the
    /// DFS did not finish the tree.
    pub dfs_quarters: usize,
}

impl Default for Options {
    fn default() -> Options {
        Options { budget: 2_000, max_steps: 20_000, seed: 0x5EED, dfs_quarters: 3 }
    }
}

/// A finding with the schedule that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which analysis fired.
    pub kind: FindingKind,
    /// Human-readable description.
    pub message: String,
    /// Replayable schedule ID (`-` for cross-schedule findings such as
    /// lock-order cycles, which have no single witness schedule).
    pub schedule: String,
}

/// The result of exploring one harness.
#[derive(Debug, Default)]
pub struct Exploration {
    /// Distinct complete schedules executed.
    pub schedules: usize,
    /// Total executions, including sleep-set-pruned partial runs.
    pub runs: usize,
    /// Whether the DFS exhausted the whole schedule tree.
    pub complete: bool,
    /// Deduplicated findings, in discovery order.
    pub findings: Vec<Finding>,
    /// Distinct lock-order edges observed across all schedules.
    pub lock_edges: usize,
}

impl Exploration {
    /// Whether the exploration finished with no findings.
    pub fn ok(&self) -> bool {
        self.findings.is_empty()
    }
}

/// The result of replaying a single schedule ID.
#[derive(Debug)]
pub struct ReplayRun {
    /// The schedule actually executed (re-encoded from the run).
    pub schedule: String,
    /// Findings observed on this schedule.
    pub findings: Vec<Finding>,
    /// The granted sync-point trace, in order.
    pub trace: Vec<(Tid, Op)>,
}

fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Modeled threads panic on purpose (abort teardown) or under
            // test (the runtime records it as a finding): stay silent.
            if rt::session().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> Option<String> {
    if payload.is::<SchedAbort>() {
        return None;
    }
    if let Some(s) = payload.downcast_ref::<&str>() {
        return Some((*s).to_string());
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return Some(s.clone());
    }
    Some("panic with non-string payload".to_string())
}

/// Runs `harness` once under `chooser`, returning the execution record.
fn run_one<F>(max_steps: usize, harness: &F, chooser: Chooser<'_>) -> ExecRecord
where
    F: Fn() -> Result<(), String> + Sync,
{
    install_panic_hook();
    let exec = Exec::new(max_steps);
    let t0 = exec.register_thread();
    std::thread::scope(|s| {
        let body_exec = exec.clone();
        s.spawn(move || {
            rt::set_session(Some((body_exec.clone(), t0)));
            let r = std::panic::catch_unwind(AssertUnwindSafe(harness));
            let (panic_msg, invariant) = match r {
                Ok(Ok(())) => (None, None),
                Ok(Err(msg)) => (None, Some(msg)),
                Err(p) => (panic_message(p), None),
            };
            body_exec.post_finish(t0, panic_msg, invariant);
            rt::set_session(None);
        });
        loop {
            match exec.step(chooser) {
                StepOutcome::Continue => {}
                StepOutcome::Done => break,
                StepOutcome::Aborted => {
                    exec.drain_after_abort();
                    break;
                }
            }
        }
    });
    exec.take_record()
}

fn harvest(
    rec: &ExecRecord,
    findings: &mut Vec<Finding>,
    seen_findings: &mut BTreeSet<(&'static str, String)>,
) {
    let schedule = sid::encode(&rec.digits);
    for f in &rec.findings {
        if seen_findings.insert((f.kind.rule(), f.message.clone())) {
            findings.push(Finding {
                kind: f.kind,
                message: f.message.clone(),
                schedule: schedule.clone(),
            });
        }
    }
}

/// Explores `harness` under `opts`: exhaustive sleep-set DFS first, then
/// (if the tree is larger than the DFS share of the budget) seeded random
/// walks for the remainder. Returns the merged findings, including a
/// cross-schedule lock-order cycle check.
pub fn explore<F>(opts: &Options, harness: F) -> Exploration
where
    F: Fn() -> Result<(), String> + Sync,
{
    let mut out = Exploration::default();
    let mut graph = LockOrderGraph::default();
    let mut seen_findings: BTreeSet<(&'static str, String)> = BTreeSet::new();
    let mut seen_schedules: BTreeSet<String> = BTreeSet::new();

    let dfs_budget = (opts.budget * opts.dfs_quarters.min(4)).div_ceil(4);
    let mut dfs = crate::strategy::Dfs::new();
    loop {
        if out.runs >= dfs_budget {
            break;
        }
        let rec = run_one(opts.max_steps, &harness, &mut |s, e, o| dfs.choose(s, e, o));
        out.runs += 1;
        harvest(&rec, &mut out.findings, &mut seen_findings);
        graph.extend(rec.order_edges.iter().copied());
        if !rec.pruned && seen_schedules.insert(sid::encode(&rec.digits)) {
            out.schedules += 1;
        }
        if !dfs.backtrack() {
            out.complete = true;
            break;
        }
    }

    if !out.complete {
        let mut walk_seed = opts.seed;
        while out.runs < opts.budget {
            let mut walk = crate::strategy::RandomWalk::new(walk_seed);
            walk_seed = walk_seed.wrapping_add(0x9E37_79B9);
            let rec = run_one(opts.max_steps, &harness, &mut |s, e, o| walk.choose(s, e, o));
            out.runs += 1;
            harvest(&rec, &mut out.findings, &mut seen_findings);
            graph.extend(rec.order_edges.iter().copied());
            if !rec.pruned && seen_schedules.insert(sid::encode(&rec.digits)) {
                out.schedules += 1;
            }
        }
    }

    if let Some(cycle) = graph.find_cycle() {
        let path: Vec<String> = cycle.iter().map(|r| format!("r{r}")).collect();
        out.findings.push(Finding {
            kind: FindingKind::LockOrderCycle,
            message: format!(
                "lock acquisition order is cyclic across schedules: {}",
                path.join(" -> ")
            ),
            schedule: "-".to_string(),
        });
    }
    out.lock_edges = graph.len();
    out
}

/// Replays one schedule ID against `harness`, returning the findings and
/// the exact sync-point trace for determinism checks.
///
/// Returns `Err` on a malformed ID.
pub fn replay<F>(opts: &Options, id: &str, harness: F) -> Result<ReplayRun, String>
where
    F: Fn() -> Result<(), String> + Sync,
{
    let digits = sid::decode(id).map_err(|c| format!("invalid schedule id character {c:?}"))?;
    let mut rep = crate::strategy::Replay::new(digits);
    let rec = run_one(opts.max_steps, &harness, &mut |s, e, o| rep.choose(s, e, o));
    let schedule = sid::encode(&rec.digits);
    let mut findings = Vec::new();
    let mut seen = BTreeSet::new();
    harvest(&rec, &mut findings, &mut seen);
    Ok(ReplayRun { schedule, findings, trace: rec.trace })
}

#[cfg(all(test, feature = "model"))]
mod tests {
    use super::*;
    use crate::sync::{self, Arc, AtomicUsize, Mutex, Ordering};

    fn small() -> Options {
        Options { budget: 300, max_steps: 2_000, seed: 7, dfs_quarters: 3 }
    }

    /// Unsynchronized read-modify-write: two threads doing
    /// `load; add; store` must lose an update on some schedule.
    #[test]
    fn lost_update_race_is_found_with_replayable_schedule() {
        let harness = || {
            let n = Arc::new(AtomicUsize::new(0));
            sync::scope(|s| {
                for _ in 0..2 {
                    let n = n.clone();
                    s.spawn(move || {
                        let v = n.load(Ordering::SeqCst);
                        n.store(v + 1, Ordering::SeqCst);
                    });
                }
            });
            let v = n.load(Ordering::SeqCst);
            if v != 2 {
                return Err(format!("lost update: counter is {v}, expected 2"));
            }
            Ok(())
        };
        let out = explore(&small(), harness);
        let bug = out
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::Invariant)
            .expect("the lost update must be observed");
        assert_ne!(bug.schedule, "-");
        // The printed schedule must reproduce the same failure.
        let rerun = replay(&small(), &bug.schedule, harness).expect("valid id");
        assert!(
            rerun.findings.iter().any(|f| f.kind == FindingKind::Invariant),
            "replay of {} found {:?}",
            bug.schedule,
            rerun.findings
        );
    }

    /// The same counter protected by a mutex: clean under every schedule,
    /// and the state space is small enough for the DFS to finish it.
    #[test]
    fn mutexed_counter_is_clean_and_exploration_completes() {
        let out = explore(&small(), || {
            let n = Arc::new(Mutex::new(0usize));
            sync::scope(|s| {
                for _ in 0..2 {
                    let n = n.clone();
                    s.spawn(move || {
                        *n.lock() += 1;
                    });
                }
            });
            let v = *n.lock();
            if v != 2 {
                return Err(format!("counter is {v}"));
            }
            Ok(())
        });
        assert!(out.ok(), "{:?}", out.findings);
        assert!(out.complete, "DFS should exhaust this tiny tree");
        assert!(out.schedules >= 2, "must explore both orders, got {}", out.schedules);
    }

    /// Opposite lock orders across two schedules: no single execution
    /// deadlocks under DFS order, but the cross-schedule union graph
    /// must report the inversion.
    #[test]
    fn lock_order_inversion_is_reported_across_schedules() {
        let out = explore(&small(), || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            sync::scope(|s| {
                let (a1, b1) = (a.clone(), b.clone());
                s.spawn(move || {
                    let _ga = a1.lock();
                    let _gb = b1.lock();
                });
                let (a2, b2) = (a.clone(), b.clone());
                s.spawn(move || {
                    let _gb = b2.lock();
                    let _ga = a2.lock();
                });
            });
            Ok(())
        });
        assert!(
            out.findings
                .iter()
                .any(|f| matches!(f.kind, FindingKind::LockOrderCycle | FindingKind::Deadlock)),
            "{:?}",
            out.findings
        );
    }

    /// A replayed schedule reproduces the identical sync-point trace.
    #[test]
    fn replay_reproduces_identical_traces() {
        let harness = || {
            let q = Arc::new(sync::SegQueue::new());
            sync::scope(|s| {
                for i in 0..2u32 {
                    let q = q.clone();
                    s.spawn(move || q.push(i));
                }
            });
            Ok(())
        };
        let out = explore(&small(), harness);
        assert!(out.ok(), "{:?}", out.findings);
        let a = replay(&small(), "1", harness).expect("valid id");
        let b = replay(&small(), "1", harness).expect("valid id");
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.schedule, b.schedule);
    }
}
