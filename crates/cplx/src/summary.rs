//! Per-function loop summaries: every `for`/`while`/`loop` block with
//! its iteration driver mapped through the lexical environment to a
//! symbolic bound, plus the directive, counter-marker, sort, and
//! sized-growth sites the rules consume.
//!
//! Inference channels, in order:
//!
//! 1. `// cplx: bound <expr> <why>` on the loop's line or the line
//!    above — the axiom escape hatch for `while`/`loop` constructs and
//!    for collections the environment cannot type.
//! 2. `for x in <collection>` — adapter chains (`.iter()`,
//!    `.enumerate()`, …) are stripped, `.chain(..)` splits into a sum,
//!    and the remaining collection identifier or method call is looked
//!    up in [`IDENT_ENV`] / [`METHOD_ENV`].
//! 3. Range endpoints — `0..source.num_docs()` and friends, resolved
//!    through the same environment (with `.len()` deferring to its
//!    receiver and `packing::narrow_u32` being transparent).
//! 4. `while let Some(..) = q.pop()` worklist pops, resolved through
//!    the queue identifier.
//!
//! A `for` loop whose driver resists all channels is still *bounded*
//! (it iterates a materialized collection) but typed [`Atom::Unk`];
//! bare `while`/`loop` with no channel are [`LoopBound::Missing`] and
//! fire C01.

use crate::sym::{parse_expr, Atom, Bound, Product};
use cbr_flow::parser::{FnItem, Workspace};
use cbr_flow::scanner::{is_ident_byte, match_bracket, SourceFile};

/// The lexical environment: collection identifiers the reproduction's
/// hot path iterates, mapped to the symbolic size of the collection.
/// The last `.`-chain segment of the driver expression is the key.
pub const IDENT_ENV: &[(&str, &str)] = &[
    // Posting lists and per-document candidate rows: at most one entry
    // per corpus document.
    ("postings", "d"),
    ("postings_buf", "d"),
    ("docs", "d"),
    ("order", "d"),
    ("cand", "d"),
    ("cand_docs", "d"),
    ("slots", "d"),
    ("entries", "d"),
    ("doc_bits", "d"),
    ("cover_words", "d"),
    // BFS / Dijkstra state pools: one state per (origin, concept) pair.
    ("frontier", "nq*c"),
    ("current", "nq*c"),
    ("state_bits", "nq*c"),
    ("pair_bits", "nq*c"),
    ("best", "nq*c"),
    ("best_stamps", "nq*c"),
    // Query-profile-sized structures.
    ("query", "nq"),
    ("q", "nq"),
    ("lists", "nq"),
    ("seed", "nq"),
    ("random", "nq"),
    // Document-profile-sized structures.
    ("doc", "nd"),
    ("buf", "nd"),
    // Result heaps.
    ("ready", "k"),
    ("heap", "k"),
    // Index geometry.
    ("segments", "seg"),
    // D-Radix address space: the staging buffer holds one entry per
    // ranked address of d ∪ q (≤ deg addresses per profile concept);
    // the label arena holds at most one address worth of components per
    // staged entry; the node arena and topological-order buffers hold
    // at most the total label length, `p·depth`.
    ("addr_buf", "p*deg"),
    ("addresses", "p"),
    ("labels", "p*deg*depth"),
    ("live", "p*depth"),
    ("topo_queue", "p*depth"),
    ("topo_order", "p*depth"),
    // The radix insertion worklist: each popped item is replaced by at
    // most two strict subranges, so pending work per insertion stays
    // within one Dewey address length.
    ("suffix_work", "depth"),
    ("comps", "depth"),
    ("components", "depth"),
    // Concept-count-sized tables.
    ("touch_stamps", "c"),
    ("stamps", "c"),
    ("concepts", "c"),
    // Bounded adjacency.
    ("edges", "deg"),
];

/// Methods whose *result* is an iterable/endpoint of known symbolic
/// size, keyed by method name.
pub const METHOD_ENV: &[(&str, &str)] = &[
    ("num_docs", "d"),
    ("num_concepts", "c"),
    ("parents", "deg"),
    ("children", "deg"),
    ("addresses_ranked", "deg"),
    ("local_postings", "d"),
];

/// Iterator adapters that preserve (or shrink) the driver's bound and
/// are stripped before the environment lookup.
const ADAPTERS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "enumerate",
    "rev",
    "copied",
    "cloned",
    "drain",
    "zip",
    "skip",
    "take",
    "by_ref",
    "values",
    "keys",
    "windows",
    "chunks",
    "as_slice",
    "as_ref",
];

/// Sort methods; a sort over a collection of symbolic size `n` costs
/// `n·log` — the log factor of the D-Radix build.
const SORT_METHODS: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_unstable_by",
    "sort_by_key",
    "sort_unstable_by_key",
];

/// Buffer-growth methods whose `bound: sized` capacity C04 cross-links.
const GROWTH_METHODS: &[&str] =
    &["push", "extend", "extend_from_slice", "resize", "append", "insert"];

/// Suppression state of a directive (mirrors `cbr-bound`'s grammar: a
/// directive with no written justification does **not** suppress).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Directive {
    /// Directive present with a written justification.
    Justified,
    /// Bare directive — parsed, but still fires with a note.
    Bare,
}

/// How a loop's iteration bound was established.
#[derive(Debug, Clone)]
pub enum LoopBound {
    /// Inferred from the driver through the lexical environment.
    Inferred(Bound),
    /// Declared via `// cplx: bound <expr> <why>`.
    Declared(Bound, Directive),
    /// A `cplx: bound` directive whose expression failed to parse.
    BadExpr(String),
    /// A `while`/`loop` construct with no inference channel and no
    /// directive — unbounded as far as the analysis can tell.
    Missing,
}

impl LoopBound {
    /// The bound used in composition; `BadExpr`/`Missing` compose as
    /// the untyped-but-finite `?` so one C01 finding does not cascade.
    pub fn bound(&self) -> Bound {
        match self {
            LoopBound::Inferred(b) | LoopBound::Declared(b, _) => b.clone(),
            LoopBound::BadExpr(_) | LoopBound::Missing => Bound::product(Product::atom(Atom::Unk)),
        }
    }
}

/// The loop construct kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// `for pat in expr { .. }`
    For,
    /// `while let Some(..) = expr { .. }`
    WhileLet,
    /// `while cond { .. }`
    While,
    /// bare `loop { .. }`
    Loop,
}

/// One loop block in a function body.
#[derive(Debug, Clone)]
pub struct LoopSite {
    /// Function (index into `ws.fns`) owning the loop.
    pub fun: usize,
    /// Byte offset of the loop keyword.
    pub at: usize,
    /// Construct kind.
    pub kind: LoopKind,
    /// Short rendering of the driver expression (for messages).
    pub driver: String,
    /// Body span (`{`..`}` offsets).
    pub span: (usize, usize),
    /// Innermost enclosing loop of the same function, if any (index
    /// into the global loop vector).
    pub parent: Option<usize>,
    /// The iteration bound.
    pub bound: LoopBound,
    /// `// cplx: counter <name>` marker on the loop.
    pub counter: Option<String>,
    /// True when the loop body is live on release paths (not test- or
    /// debug-gated).
    pub live: bool,
}

/// One `.sort*()` call site.
#[derive(Debug, Clone)]
pub struct SortSite {
    /// Byte offset of the method name.
    pub at: usize,
    /// Symbolic size of the sorted collection (receiver through the
    /// environment; `Unk` when untyped).
    pub size: Bound,
    /// Innermost enclosing loop, if any.
    pub in_loop: Option<usize>,
}

/// One justified `bound: sized` growth site inside a loop (C04).
#[derive(Debug, Clone)]
pub struct SizedSite {
    /// Byte offset of the growth method name.
    pub at: usize,
    /// Receiver chain of the growing table.
    pub receiver: String,
    /// Declared or environment capacity of the table, if typed.
    pub capacity: Option<Bound>,
    /// Innermost enclosing loop (sized sites are only collected inside
    /// loops).
    pub in_loop: usize,
}

/// One `counters::bump_*` call site.
#[derive(Debug, Clone)]
pub struct BumpSite {
    /// Byte offset of the call.
    pub at: usize,
    /// Counter name (the `bump_` suffix).
    pub name: String,
    /// Innermost enclosing loop, if any.
    pub in_loop: Option<usize>,
}

/// Per-function summary.
#[derive(Debug, Clone, Default)]
pub struct FnLoops {
    /// Indices into [`Summaries::loops`] of this function's loops.
    pub loops: Vec<usize>,
    /// Function-level `cplx: bound` axiom: the declared total bound
    /// overrides bottom-up composition (the amortization escape hatch).
    pub axiom: Option<(Bound, Directive)>,
    /// An axiom directive whose expression failed to parse.
    pub axiom_bad: Option<String>,
    /// Sort call sites.
    pub sorts: Vec<SortSite>,
    /// Justified sized-growth sites inside loops.
    pub sized: Vec<SizedSite>,
    /// Counter bump call sites.
    pub bumps: Vec<BumpSite>,
}

/// All summaries for a parsed workspace.
#[derive(Debug, Default)]
pub struct Summaries {
    /// Every loop block, across all functions.
    pub loops: Vec<LoopSite>,
    /// Per-function data, indexed like `ws.fns`.
    pub fns: Vec<FnLoops>,
}

/// Looks up `ident` in an environment table and parses its expression.
fn env_lookup(table: &[(&str, &str)], ident: &str) -> Option<Bound> {
    table.iter().find(|(k, _)| *k == ident).and_then(|(_, e)| parse_expr(e))
}

/// Truncated single-line rendering of `code[from..to]` for messages.
fn snippet(code: &str, from: usize, to: usize) -> String {
    let s = code[from..to].split_whitespace().collect::<Vec<_>>().join(" ");
    if s.len() > 48 {
        format!("..{}", &s[s.len() - 46..])
    } else {
        s
    }
}

/// The text after `key` on `line`, if the directive is present.
fn directive_rest(line: &str, key: &str) -> Option<String> {
    line.find(key).map(|pos| line[pos + key.len()..].trim().to_string())
}

/// Splits a `cplx: bound` payload into `(expr, why-justified?)`.
fn split_payload(rest: &str) -> (String, Directive) {
    let mut parts = rest.splitn(2, char::is_whitespace);
    let expr = parts.next().unwrap_or("").to_string();
    let why = parts.next().unwrap_or("").trim_matches(|c: char| {
        c.is_whitespace() || matches!(c, '—' | '-' | ':' | ',' | '.' | '*' | '/')
    });
    let d = if why.chars().any(|c| c.is_alphanumeric()) {
        Directive::Justified
    } else {
        Directive::Bare
    };
    (expr, d)
}

/// Directive payload on the site's line or the line above.
fn directive_near(file: &SourceFile, at: usize, key: &str) -> Option<String> {
    let lines: Vec<&str> = file.text.lines().collect();
    let line = file.line_of(at); // 1-based
    for idx in [line, line.saturating_sub(1)] {
        if idx >= 1 {
            if let Some(rest) = lines.get(idx - 1).and_then(|l| directive_rest(l, key)) {
                return Some(rest);
            }
        }
    }
    None
}

/// Directive payload in the comment/attribute block directly above the
/// function declaration (the fn-axiom position).
fn directive_above_fn(file: &SourceFile, f: &FnItem, key: &str) -> Option<String> {
    let lines: Vec<&str> = file.text.lines().collect();
    let mut idx = file.line_of(f.decl).saturating_sub(1);
    while idx >= 1 {
        let l = lines[idx - 1].trim_start();
        if !(l.starts_with("//") || l.starts_with("#[") || l.starts_with("/*")) {
            break;
        }
        if let Some(rest) = directive_rest(l, key) {
            return Some(rest);
        }
        idx -= 1;
    }
    None
}

/// `bound: sized` justification state at a growth site (same scoping as
/// `cbr-bound`'s B03: site line, line above, or the fn comment block).
fn sized_justified(file: &SourceFile, f: &FnItem, at: usize) -> bool {
    let rest = directive_near(file, at, "bound: sized")
        .or_else(|| directive_above_fn(file, f, "bound: sized"));
    match rest {
        Some(r) => {
            let why = r.trim_matches(|c: char| {
                c.is_whitespace() || matches!(c, '—' | '-' | ':' | ',' | '.' | '*' | '/')
            });
            why.chars().any(|c| c.is_alphanumeric())
        }
        None => false,
    }
}

/// Reads the identifier chain ending at `end`; returns the last
/// `.`-segment.
fn last_segment_back(bytes: &[u8], end: usize) -> String {
    let mut p = end;
    while p > 0 && is_ident_byte(bytes[p - 1]) {
        p -= 1;
    }
    String::from_utf8_lossy(&bytes[p..end]).into_owned()
}

/// Strips trailing adapter calls (`.iter()`, `.enumerate()`, …) from a
/// driver expression. `.chain(arg)` splits into `(base, Some(arg))`.
fn strip_adapters(expr: &str) -> (String, Option<String>) {
    let mut s = expr.trim().to_string();
    loop {
        let t = s.trim_end();
        if !t.ends_with(')') {
            return (t.to_string(), None);
        }
        // Find the matching open paren of the trailing group.
        let bytes = t.as_bytes();
        let mut depth = 0i32;
        let mut open = None;
        for i in (0..t.len()).rev() {
            match bytes[i] {
                b')' => depth += 1,
                b'(' => {
                    depth -= 1;
                    if depth == 0 {
                        open = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(open) = open else {
            return (t.to_string(), None);
        };
        let name = last_segment_back(bytes, open);
        if name.is_empty() || open < name.len() + 1 || bytes[open - name.len() - 1] != b'.' {
            return (t.to_string(), None);
        }
        if name == "chain" {
            let base = t[..open - name.len() - 1].to_string();
            let arg = t[open + 1..t.len() - 1].to_string();
            return (base, Some(arg));
        }
        if !ADAPTERS.contains(&name.as_str()) {
            return (t.to_string(), None);
        }
        s = t[..open - name.len() - 1].to_string();
    }
}

/// Infers the symbolic size of a collection/endpoint expression through
/// the environment. Returns `None` when the expression resists typing.
fn infer_size(expr: &str) -> Option<Bound> {
    let expr = expr.trim().trim_start_matches("&mut ").trim_start_matches('&').trim();
    if expr.is_empty() {
        return None;
    }
    // Numeric literal endpoint: constant.
    if expr.bytes().next().is_some_and(|b| b.is_ascii_digit()) && !expr.contains('.') {
        return Some(Bound::one());
    }
    let (base, chained) = strip_adapters(expr);
    if let Some(arg) = chained {
        let a = infer_size(&base)?;
        let b = infer_size(&arg)?;
        // `doc ∪ query` is the paper's combined profile.
        if a == parse_expr("nd").unwrap() && b == parse_expr("nq").unwrap() {
            return parse_expr("p");
        }
        return Some(a.plus(&b));
    }
    let bytes = base.as_bytes();
    if base.ends_with(')') {
        // A method/function call: `x.len()`, `source.num_docs()`,
        // `paths.addresses_ranked(c)`, `packing::narrow_u32(self.live)`.
        let mut depth = 0i32;
        let mut open = base.len();
        for i in (0..base.len()).rev() {
            match bytes[i] {
                b')' => depth += 1,
                b'(' => {
                    depth -= 1;
                    if depth == 0 {
                        open = i;
                        break;
                    }
                }
                _ => {}
            }
        }
        let name = last_segment_back(bytes, open);
        if name == "len" || name == "capacity" {
            // Defer to the receiver: `x.len()` is sized like `x`.
            let recv_end = open - name.len() - 1; // the `.`
            let recv = last_segment_back(bytes, recv_end);
            return env_lookup(IDENT_ENV, &recv);
        }
        if name == "narrow_u32" || name == "min" {
            return infer_size(&base[open + 1..base.len() - 1]);
        }
        return env_lookup(METHOD_ENV, &name);
    }
    // A plain identifier chain: key on the last segment.
    let leaf = last_segment_back(bytes, base.len());
    if leaf.is_empty() {
        return None;
    }
    env_lookup(IDENT_ENV, &leaf)
}

/// Infers a `for`-loop driver: range endpoints or collection size.
fn infer_for(expr: &str) -> Option<Bound> {
    let expr = expr.trim();
    // Range: `a..b` / `a..=b` at top level (parenthesized ranges are
    // rare enough to ignore).
    if let Some(pos) = expr.find("..") {
        if !expr[..pos].contains('(') && !expr[..pos].contains('[') {
            let end = expr[pos + 2..].trim_start_matches('=');
            return infer_size(end);
        }
    }
    infer_size(expr)
}

/// Infers a `while let` worklist driver: `q.pop()`-style pops resolve
/// to the queue's symbolic size (every pop consumes one queued item).
fn infer_while_let(expr: &str) -> Option<Bound> {
    let expr = expr.trim();
    for pop in [".pop()", ".pop_front()", ".pop_back()", ".next()"] {
        if let Some(pos) = expr.find(pop) {
            let leaf = last_segment_back(expr.as_bytes(), pos);
            return env_lookup(IDENT_ENV, &leaf);
        }
    }
    None
}

/// Scans one function body for loop keyword sites, in source order.
fn loop_sites(code: &str, body: (usize, usize)) -> Vec<(usize, LoopKind, usize, usize)> {
    let bytes = code.as_bytes();
    let hi = body.1.min(code.len());
    let mut out = Vec::new();
    for kw in ["for ", "while ", "loop"] {
        let mut from = body.0;
        while let Some(rel) = code[from..hi].find(kw) {
            let at = from + rel;
            from = at + 1;
            if at > 0 && is_ident_byte(bytes[at - 1]) {
                continue;
            }
            let after = at + kw.len();
            if kw == "loop" && bytes.get(after).copied().is_some_and(is_ident_byte) {
                continue;
            }
            if kw == "while " && code[after..hi].trim_start().starts_with("let ") {
                continue; // collected by the dedicated `while let` pass
            }
            let Some(open_rel) = code[after..hi].find('{') else {
                continue;
            };
            let open = after + open_rel;
            let Some(close) = match_bracket(bytes, open, b'{', b'}') else {
                continue;
            };
            let kind = match kw {
                "for " => LoopKind::For,
                "while " => LoopKind::While,
                _ => LoopKind::Loop,
            };
            out.push((at, kind, open, close));
        }
    }
    // The dedicated `while let` pass (the generic `while ` pass skips
    // them so the driver is the pop expression, not the whole pattern).
    let mut from = body.0;
    while let Some(rel) = code[from..hi].find("while let ") {
        let at = from + rel;
        from = at + 1;
        if at > 0 && is_ident_byte(bytes[at - 1]) {
            continue;
        }
        let after = at + "while let ".len();
        let Some(open_rel) = code[after..hi].find('{') else {
            continue;
        };
        let open = after + open_rel;
        let Some(close) = match_bracket(bytes, open, b'{', b'}') else {
            continue;
        };
        out.push((at, LoopKind::WhileLet, open, close));
    }
    out.sort_by_key(|&(at, ..)| at);
    out
}

/// Extracts loop summaries for every function in the workspace.
pub fn extract(ws: &Workspace) -> Summaries {
    let mut sm = Summaries::default();
    for (fi, f) in ws.fns.iter().enumerate() {
        let file = &ws.files[f.file];
        let mut fl = FnLoops::default();
        if f.is_test {
            sm.fns.push(fl);
            continue;
        }
        let code = &file.code;
        let body = f.body;
        let live = |at: usize| !file.is_test(at) && !file.is_debug_gated(at);

        // Function-level axiom.
        if let Some(rest) = directive_above_fn(file, f, "cplx: bound") {
            let (expr, d) = split_payload(&rest);
            match parse_expr(&expr) {
                Some(b) => fl.axiom = Some((b, d)),
                None => fl.axiom_bad = Some(expr),
            }
        }

        // Loops, with nesting and per-loop directives.
        let first = sm.loops.len();
        for (at, kind, open, close) in loop_sites(code, body) {
            let header = snippet(code, at, open);
            let driver = match kind {
                LoopKind::For => {
                    let h = &code[at..open];
                    h.find(" in ")
                        .map(|p| code[at + p + 4..open].trim().to_string())
                        .unwrap_or_default()
                }
                LoopKind::WhileLet => {
                    let h = &code[at..open];
                    h.find('=')
                        .map(|p| code[at + p + 1..open].trim().to_string())
                        .unwrap_or_default()
                }
                LoopKind::While => code[at + "while ".len()..open].trim().to_string(),
                LoopKind::Loop => String::new(),
            };
            let declared = directive_near(file, at, "cplx: bound").map(|rest| split_payload(&rest));
            let bound = match declared {
                Some((expr, d)) => match parse_expr(&expr) {
                    Some(b) => LoopBound::Declared(b, d),
                    None => LoopBound::BadExpr(expr),
                },
                None => {
                    let inferred = match kind {
                        LoopKind::For => infer_for(&driver),
                        LoopKind::WhileLet => infer_while_let(&driver),
                        LoopKind::While | LoopKind::Loop => None,
                    };
                    match (inferred, kind) {
                        (Some(b), _) => LoopBound::Inferred(b),
                        // A `for` over a materialized collection is
                        // finite even when the environment cannot type
                        // it.
                        (None, LoopKind::For) => {
                            LoopBound::Inferred(Bound::product(Product::atom(Atom::Unk)))
                        }
                        (None, _) => LoopBound::Missing,
                    }
                }
            };
            let counter = directive_near(file, at, "cplx: counter")
                .map(|rest| rest.split_whitespace().next().unwrap_or("").to_string())
                .filter(|n| !n.is_empty());
            let idx = sm.loops.len();
            // Innermost enclosing loop: the latest earlier loop of this
            // fn whose span contains this keyword.
            let parent = sm.loops[first..idx]
                .iter()
                .enumerate()
                .filter(|(_, l)| l.span.0 < at && at < l.span.1)
                .map(|(i, _)| first + i)
                .next_back();
            let display =
                if driver.is_empty() { header } else { snippet(&driver, 0, driver.len()) };
            sm.loops.push(LoopSite {
                fun: fi,
                at,
                kind,
                driver: display,
                span: (open, close),
                parent,
                bound,
                counter,
                live: live(at),
            });
            fl.loops.push(idx);
        }

        let own_loops = fl.loops.clone();
        let loops_ref = &sm.loops;
        let in_loop = move |at: usize| -> Option<usize> {
            own_loops
                .iter()
                .copied()
                .rfind(|&i| loops_ref[i].span.0 < at && at < loops_ref[i].span.1)
        };

        // Sorts, sized growth sites, and counter bumps from the call
        // list.
        for call in &f.calls {
            if !live(call.at) {
                continue;
            }
            if call.name.starts_with("bump_") {
                fl.bumps.push(BumpSite {
                    at: call.at,
                    name: call.name["bump_".len()..].to_string(),
                    in_loop: in_loop(call.at),
                });
                continue;
            }
            if !call.method || call.recv_self {
                continue;
            }
            if SORT_METHODS.contains(&call.name.as_str()) {
                let size = infer_size(&call.receiver)
                    .unwrap_or_else(|| Bound::product(Product::atom(Atom::Unk)));
                fl.sorts.push(SortSite { at: call.at, size, in_loop: in_loop(call.at) });
            } else if GROWTH_METHODS.contains(&call.name.as_str()) {
                if let Some(li) = in_loop(call.at) {
                    if sized_justified(file, f, call.at) {
                        let cap = directive_near(file, call.at, "cplx: cap")
                            .map(|rest| split_payload(&rest).0)
                            .and_then(|e| parse_expr(&e))
                            .or_else(|| {
                                let leaf = call
                                    .receiver
                                    .rsplit('.')
                                    .next()
                                    .unwrap_or(call.receiver.as_str());
                                env_lookup(IDENT_ENV, leaf)
                            });
                        fl.sized.push(SizedSite {
                            at: call.at,
                            receiver: call.receiver.clone(),
                            capacity: cap,
                            in_loop: li,
                        });
                    }
                }
            }
        }

        sm.fns.push(fl);
    }
    sm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summarize(text: &str) -> (Workspace, Summaries) {
        let ws = Workspace::parse(vec![SourceFile::parse("crates/x/src/lib.rs", text)]);
        let sm = extract(&ws);
        (ws, sm)
    }

    #[test]
    fn for_drivers_resolve_through_the_environment() {
        let (_, sm) = summarize(
            "fn f(postings: &[u32]) {\n\
             \x20   for &d in postings.iter() { work(d); }\n\
             \x20   for i in 0..source.num_docs() { work(i); }\n\
             \x20   for x in mystery_collection() { work(x); }\n\
             }\n",
        );
        let bounds: Vec<String> = sm.loops.iter().map(|l| l.bound.bound().render()).collect();
        assert_eq!(bounds, ["O(D)", "O(D)", "O(?)"]);
    }

    #[test]
    fn chain_of_doc_and_query_is_the_combined_profile() {
        let (_, sm) = summarize(
            "fn f(doc: &[u32], query: &[u32]) {\n\
             \x20   for &c in doc.iter().chain(query) { work(c); }\n\
             }\n",
        );
        assert_eq!(sm.loops[0].bound.bound().render(), "O(P)");
    }

    #[test]
    fn while_and_loop_need_directives() {
        let (_, sm) = summarize(
            "fn f(n: usize) {\n\
             \x20   while cond() { step(); }\n\
             \x20   // cplx: bound depth — descends one radix edge per turn\n\
             \x20   loop { if done() { break; } }\n\
             \x20   // cplx: bound d\n\
             \x20   while pos < n { pos += 1; }\n\
             }\n",
        );
        assert!(matches!(sm.loops[0].bound, LoopBound::Missing));
        assert!(matches!(sm.loops[1].bound, LoopBound::Declared(_, Directive::Justified)));
        assert!(matches!(sm.loops[2].bound, LoopBound::Declared(_, Directive::Bare)));
    }

    #[test]
    fn while_let_pops_resolve_the_worklist() {
        let (_, sm) = summarize(
            "fn f(frontier: Vec<u32>) {\n\
             \x20   while let Some(s) = frontier.pop() { work(s); }\n\
             }\n",
        );
        assert_eq!(sm.loops[0].kind, LoopKind::WhileLet);
        assert_eq!(sm.loops[0].bound.bound().render(), "O(nq·C)");
    }

    #[test]
    fn nesting_counters_and_sorts_are_captured() {
        let (ws, sm) = summarize(
            "fn f(lists: &[u32], entries: &[u32], order: &mut Vec<u32>) {\n\
             \x20   // cplx: counter outer\n\
             \x20   for l in lists {\n\
             \x20       bump_outer();\n\
             \x20       for e in entries { work(l, e); }\n\
             \x20   }\n\
             \x20   order.sort_unstable_by(|a, b| a.cmp(b));\n\
             }\n",
        );
        let fid = ws.fns.iter().position(|f| f.name == "f").unwrap();
        assert_eq!(sm.loops[1].parent, Some(0));
        assert_eq!(sm.loops[0].counter.as_deref(), Some("outer"));
        assert_eq!(sm.fns[fid].bumps.len(), 1);
        assert_eq!(sm.fns[fid].bumps[0].in_loop, Some(0));
        assert_eq!(sm.fns[fid].sorts.len(), 1);
        assert_eq!(sm.fns[fid].sorts[0].size.render(), "O(D)");
    }

    #[test]
    fn sized_sites_inside_loops_carry_capacities() {
        let (ws, sm) = summarize(
            "fn f(lists: &[u32], random: &mut Vec<u32>) {\n\
             \x20   for l in lists {\n\
             \x20       // bound: sized — one random-access table per query concept\n\
             \x20       random.push(*l);\n\
             \x20   }\n\
             }\n",
        );
        let fid = ws.fns.iter().position(|f| f.name == "f").unwrap();
        assert_eq!(sm.fns[fid].sized.len(), 1);
        assert_eq!(sm.fns[fid].sized[0].capacity.as_ref().unwrap().render(), "O(nq)");
    }

    #[test]
    fn fn_axioms_parse_from_the_comment_block() {
        let (ws, sm) = summarize(
            "/// Applies postings.\n\
             /// cplx: bound nq*post — amortized over the whole query\n\
             fn apply(postings: &[u32]) { for &d in postings { work(d); } }\n",
        );
        let fid = ws.fns.iter().position(|f| f.name == "apply").unwrap();
        let (b, d) = sm.fns[fid].axiom.clone().unwrap();
        assert_eq!(b.render(), "O(nq·post)");
        assert_eq!(d, Directive::Justified);
    }
}
