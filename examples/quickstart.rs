//! Quickstart: build an engine over synthetic EMR data and run both query
//! types of the paper (RDS and SDS).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use concept_rank::prelude::*;
use concept_rank_repro::demo;

fn main() {
    // 1. A SNOMED-shaped ontology (5,000 concepts) and a RADIO-shaped
    //    corpus (300 documents, ~25 concepts each). Both deterministic.
    println!("building ontology + corpus + engine …");
    let engine = demo::engine(5_000, 300, 25.0);
    println!("  {} concepts, {} documents\n", engine.ontology().len(), engine.num_docs());

    // 2. RDS: find documents relevant to a set of query concepts —
    //    the paper's "clinical researcher screening trial candidates".
    let query: Vec<ConceptId> = engine
        .corpus()
        .documents()
        .find(|d| d.num_concepts() >= 3)
        .map(|d| d.concepts()[..3].to_vec())
        .expect("corpus has a document with three concepts");

    println!("RDS query on {} concepts:", query.len());
    for &c in &query {
        println!("  - {}", engine.ontology().label(c));
    }
    let hits = engine.rds(&query, 5).expect("query is non-empty");
    println!("top-5 relevant documents:");
    for hit in &hits.results {
        println!("  {}  Ddq = {}", hit.doc, hit.distance);
    }
    println!(
        "  [{} docs examined of {} candidates, {} BFS levels, {:?} total]\n",
        hits.metrics.docs_examined,
        hits.metrics.candidates_seen,
        hits.metrics.levels,
        hits.metrics.total()
    );

    // 3. Explanation: why did the best document match?
    let best = hits.results[0].doc;
    let explanation = engine.explain_rds(best, &query).expect("explainable");
    println!("why {best} matched:");
    for m in &explanation.matches {
        println!(
            "  {:?} → nearest concept {:?} at distance {}",
            engine.ontology().label(m.query_concept),
            engine.ontology().label(m.nearest),
            m.distance
        );
    }
    println!();

    // 4. SDS: most similar documents to a given patient record.
    let patient = DocId(0);
    let sims = engine.sds_by_doc(patient, 4).expect("document exists");
    println!("documents most similar to {patient} (SDS):");
    for s in &sims.results {
        println!("  {}  Ddd = {:.3}", s.doc, s.distance);
    }
}
