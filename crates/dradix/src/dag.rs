//! The D-Radix DAG (Definition 3) and its construction.
//!
//! Given two concept sets `d` (document) and `q` (query), the D-Radix DAG
//! `T(d,q)` indexes every Dewey address of every concept in `d ∪ q`. Each
//! node carries two distances — from the nearest document concept and from
//! the nearest query concept — initialized to 0 for member concepts and ∞
//! otherwise, then *tuned* with one bottom-up and one top-down relaxation
//! pass (Equation 4). Unlike a plain Radix tree:
//!
//! * nodes carry the two distances;
//! * two concept nodes are never merged even without branching — only
//!   non-member prefix nodes are compressed away;
//! * the structure is a DAG: a concept with several root paths is one node
//!   with several incoming edges (`FindNodeByDewey` in the paper resolves
//!   a path address to its concept; here that is an ontology walk).
//!
//! Insertion follows Function InsertPath: walk from the root matching edge
//! labels against the remaining suffix; on divergence, split the edge at
//! the longest common prefix, whose endpoint is resolved to a concept and
//! materialized as a node. Splits recurse so that re-reaching an existing
//! sub-DAG through a second route (Example 2, steps 6–8 of the paper)
//! merges cleanly instead of duplicating edges.

use cbr_ontology::{ConceptId, FxHashMap, Ontology};

/// Distance placeholder before tuning (`∞` in the paper).
pub const UNSET: u32 = u32::MAX;

/// One radix node: the two tracked distances plus outgoing edges.
#[derive(Debug, Clone)]
struct Node {
    concept: ConceptId,
    /// Distance from the nearest document concept (`Ddc(d, ci)`).
    doc_dist: u32,
    /// Distance from the nearest query concept (`Ddc(q, ci)`).
    query_dist: u32,
    /// Outgoing edges; at most one child edge per leading Dewey component.
    edges: Vec<Edge>,
    /// Number of incoming edges (for the topological pass).
    indegree: u32,
}

/// A compressed edge: the Dewey components between two materialized nodes.
#[derive(Debug, Clone)]
struct Edge {
    target: u32,
    label: Box<[u32]>,
    /// Total cost of the compressed ontology edges: the component count in
    /// the unit-weight case, or the weight sum under [`EdgeWeights`].
    weight: u32,
}

/// Shape statistics of a built DAG (used by tests and the ablation bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DagStats {
    /// Materialized radix nodes (including the root).
    pub nodes: usize,
    /// Compressed edges.
    pub edges: usize,
    /// Dewey addresses inserted (`|Pd| + |Pq|`).
    pub addresses: usize,
}

/// The D-Radix DAG over one `(document, query)` pair.
#[derive(Debug)]
pub struct DRadixDag {
    nodes: Vec<Node>,
    by_concept: FxHashMap<ConceptId, u32>,
    addresses_inserted: usize,
}

impl DRadixDag {
    /// Builds the DAG for `doc` and `query` over `ont`, inserting the
    /// lexicographically sorted Dewey address lists `Pd` and `Pq`
    /// (Algorithm 1, construction phase) and initializing member distances
    /// to zero. Unit edge weights (the paper's metric).
    pub fn build(ont: &Ontology, doc: &[ConceptId], query: &[ConceptId]) -> DRadixDag {
        Self::build_impl(ont, doc, query, None)
    }

    /// Like [`DRadixDag::build`] but pricing every compressed edge with the
    /// weight sum of the ontology edges it spans (the weighted-edge
    /// future-work prototype, see [`cbr_ontology::weighted`]).
    pub fn build_weighted(
        ont: &Ontology,
        doc: &[ConceptId],
        query: &[ConceptId],
        weights: &cbr_ontology::EdgeWeights,
    ) -> DRadixDag {
        Self::build_impl(ont, doc, query, Some(weights))
    }

    fn build_impl(
        ont: &Ontology,
        doc: &[ConceptId],
        query: &[ConceptId],
        weights: Option<&cbr_ontology::EdgeWeights>,
    ) -> DRadixDag {
        let paths = ont.path_table();
        let in_doc: cbr_ontology::FxHashSet<ConceptId> = doc.iter().copied().collect();
        let in_query: cbr_ontology::FxHashSet<ConceptId> = query.iter().copied().collect();

        let mut dag = DRadixDag {
            nodes: Vec::with_capacity(doc.len() + query.len() + 8),
            by_concept: FxHashMap::default(),
            addresses_inserted: 0,
        };
        // Initialize with the root (Algorithm 1 line 4).
        let root = ont.root();
        dag.slot_for(root, &in_doc, &in_query);

        // Merge-consume Pd and Pq in lexicographic order (lines 6–14).
        let pd = paths.sorted_address_list(doc);
        let pq = paths.sorted_address_list(query);
        let (mut i, mut j) = (0, 0);
        while i < pd.len() || j < pq.len() {
            let take_doc = match (pd.get(i), pq.get(j)) {
                (Some(a), Some(b)) => a.0 <= b.0,
                (Some(_), None) => true,
                (None, _) => false,
            };
            let (addr, concept) = if take_doc {
                i += 1;
                pd[i - 1]
            } else {
                j += 1;
                pq[j - 1]
            };
            dag.insert_address(ont, weights, concept, addr, &in_doc, &in_query);
        }
        dag
    }

    /// Runs the tuning phase (Algorithm 1 lines 19–27): a bottom-up pass in
    /// reverse topological order followed by a top-down pass, both relaxing
    /// with Equation 4. After this every node holds its exact valid-path
    /// distance from the nearest document and query concepts.
    pub fn tune(&mut self) {
        let order = self.topological_order();
        // Bottom-up: pull distances from children.
        for &n in order.iter().rev() {
            let node = &self.nodes[n as usize];
            let mut doc = node.doc_dist;
            let mut query = node.query_dist;
            for e in &node.edges {
                let child = &self.nodes[e.target as usize];
                doc = doc.min(child.doc_dist.saturating_add(e.weight));
                query = query.min(child.query_dist.saturating_add(e.weight));
            }
            let node = &mut self.nodes[n as usize];
            node.doc_dist = doc;
            node.query_dist = query;
        }
        // Top-down: push distances to children.
        for &n in &order {
            let node = &self.nodes[n as usize];
            let doc = node.doc_dist;
            let query = node.query_dist;
            let edges: Vec<(u32, u32)> = node
                .edges
                .iter()
                .map(|e| (e.target, e.weight))
                .collect();
            for (target, w) in edges {
                let child = &mut self.nodes[target as usize];
                child.doc_dist = child.doc_dist.min(doc.saturating_add(w));
                child.query_dist = child.query_dist.min(query.saturating_add(w));
            }
        }
    }

    /// Distance of radix node `c` from the nearest *document* concept
    /// (`Ddc(d, c)`), exact after [`tune`](Self::tune). Returns `None` for
    /// concepts not materialized in the DAG.
    pub fn doc_distance(&self, c: ConceptId) -> Option<u32> {
        self.by_concept.get(&c).map(|&n| self.nodes[n as usize].doc_dist)
    }

    /// Distance of radix node `c` from the nearest *query* concept
    /// (`Ddc(q, c)`), exact after [`tune`](Self::tune).
    pub fn query_distance(&self, c: ConceptId) -> Option<u32> {
        self.by_concept.get(&c).map(|&n| self.nodes[n as usize].query_dist)
    }

    /// Shape statistics.
    pub fn stats(&self) -> DagStats {
        DagStats {
            nodes: self.nodes.len(),
            edges: self.nodes.iter().map(|n| n.edges.len()).sum(),
            addresses: self.addresses_inserted,
        }
    }

    /// Whether concept `c` is materialized as a node.
    pub fn contains(&self, c: ConceptId) -> bool {
        self.by_concept.contains_key(&c)
    }

    /// Iterates the materialized nodes as
    /// `(concept, doc distance, query distance)`.
    pub fn nodes(&self) -> impl Iterator<Item = (ConceptId, u32, u32)> + '_ {
        self.nodes.iter().map(|n| (n.concept, n.doc_dist, n.query_dist))
    }

    /// Iterates the compressed edges as
    /// `(parent concept, child concept, label components, weight)`.
    pub fn edges(&self) -> impl Iterator<Item = (ConceptId, ConceptId, &[u32], u32)> + '_ {
        self.nodes.iter().flat_map(move |n| {
            n.edges.iter().map(move |e| {
                (n.concept, self.nodes[e.target as usize].concept, e.label.as_ref(), e.weight)
            })
        })
    }

    /// Renders the DAG in Graphviz DOT, Figure 5(g)-style: every node shows
    /// its concept label with the `(document distance, query distance)`
    /// pair, and edges carry their Dewey labels.
    pub fn to_dot(&self, ont: &Ontology) -> String {
        use std::fmt::Write as _;
        let fmt_dist = |d: u32| {
            if d == UNSET {
                "∞".to_string()
            } else {
                d.to_string()
            }
        };
        let mut out =
            String::from("digraph dradix {\n  rankdir=TB;\n  node [fontsize=10, shape=ellipse];\n");
        let mut nodes: Vec<&Node> = self.nodes.iter().collect();
        nodes.sort_by_key(|n| n.concept);
        for n in &nodes {
            let _ = writeln!(
                out,
                "  c{} [label=\"{} ({}, {})\"];",
                n.concept.0,
                cbr_ontology::dot::escape_label(ont.label(n.concept)),
                fmt_dist(n.doc_dist),
                fmt_dist(n.query_dist)
            );
        }
        for n in &nodes {
            for e in &n.edges {
                let label: Vec<String> =
                    e.label.iter().map(|c| c.to_string()).collect();
                let _ = writeln!(
                    out,
                    "  c{} -> c{} [label=\"{}\"];",
                    n.concept.0,
                    self.nodes[e.target as usize].concept.0,
                    label.join(".")
                );
            }
        }
        out.push_str("}\n");
        out
    }

    // --- construction internals -------------------------------------------

    fn slot_for(
        &mut self,
        concept: ConceptId,
        in_doc: &cbr_ontology::FxHashSet<ConceptId>,
        in_query: &cbr_ontology::FxHashSet<ConceptId>,
    ) -> u32 {
        if let Some(&n) = self.by_concept.get(&concept) {
            return n;
        }
        let n = self.nodes.len() as u32;
        self.nodes.push(Node {
            concept,
            doc_dist: if in_doc.contains(&concept) { 0 } else { UNSET },
            query_dist: if in_query.contains(&concept) { 0 } else { UNSET },
            edges: Vec::new(),
            indegree: 0,
        });
        self.by_concept.insert(concept, n);
        n
    }

    fn insert_address(
        &mut self,
        ont: &Ontology,
        weights: Option<&cbr_ontology::EdgeWeights>,
        concept: ConceptId,
        addr: &[u32],
        in_doc: &cbr_ontology::FxHashSet<ConceptId>,
        in_query: &cbr_ontology::FxHashSet<ConceptId>,
    ) {
        self.addresses_inserted += 1;
        let root = self.by_concept[&ont.root()];
        self.insert_suffix(ont, weights, root, concept, addr, in_doc, in_query);
    }

    /// Function InsertPath: attaches `target`, reachable from the concept of
    /// node `from` by walking the ontology along `label`, into the radix
    /// structure below `from`.
    #[allow(clippy::too_many_arguments)]
    fn insert_suffix(
        &mut self,
        ont: &Ontology,
        weights: Option<&cbr_ontology::EdgeWeights>,
        from: u32,
        target: ConceptId,
        label: &[u32],
        in_doc: &cbr_ontology::FxHashSet<ConceptId>,
        in_query: &cbr_ontology::FxHashSet<ConceptId>,
    ) {
        let mut cn = from;
        let mut v = label;
        loop {
            if v.is_empty() {
                // Fully matched: the walk ended on an existing node, which
                // must be the target (equal Dewey position ⇒ equal concept).
                debug_assert_eq!(self.nodes[cn as usize].concept, target);
                return;
            }
            // At most one edge shares the leading component with v.
            let edge_idx = self.nodes[cn as usize]
                .edges
                .iter()
                .position(|e| e.label[0] == v[0]);
            let Some(idx) = edge_idx else {
                // No shared prefix: target becomes a direct child (lines 11–13).
                let t = self.slot_for(target, in_doc, in_query);
                let w = self.price(ont, weights, cn, v);
                self.add_edge(cn, t, v, w);
                return;
            };

            let (m_target, m_label) = {
                let e = &self.nodes[cn as usize].edges[idx];
                (e.target, e.label.clone())
            };
            let lcp = cbr_ontology::dewey::longest_common_prefix(v, &m_label);
            if lcp == m_label.len() {
                // v contains the full edge label: descend (lines 14–17).
                cn = m_target;
                v = &v[lcp..];
                continue;
            }

            // Partial overlap: split the edge at the LCP (lines 18–27). The
            // LCP endpoint is a real ontology node, resolved by walking from
            // cn's concept (the paper's FindNodeByDewey).
            let mid_concept = resolve_relative(ont, self.nodes[cn as usize].concept, &v[..lcp]);
            self.remove_edge(cn, idx);
            let mid = self.slot_for(mid_concept, in_doc, in_query);
            let w = self.price(ont, weights, cn, &v[..lcp]);
            self.add_edge(cn, mid, &v[..lcp], w);
            // Re-attach the displaced edge below the split point; recursion
            // handles the case where `mid` already owns a sub-DAG reached
            // through another root path.
            let old_target_concept = self.nodes[m_target as usize].concept;
            self.insert_suffix(ont, weights, mid, old_target_concept, &m_label[lcp..], in_doc, in_query);
            if mid_concept != target {
                self.insert_suffix(ont, weights, mid, target, &v[lcp..], in_doc, in_query);
            }
            return;
        }
    }

    /// Cost of walking `comps` down from node `from` under the active
    /// weighting (component count when unweighted).
    fn price(
        &self,
        ont: &Ontology,
        weights: Option<&cbr_ontology::EdgeWeights>,
        from: u32,
        comps: &[u32],
    ) -> u32 {
        match weights {
            None => comps.len() as u32,
            Some(w) => w.path_weight(ont, self.nodes[from as usize].concept, comps),
        }
    }

    fn add_edge(&mut self, from: u32, to: u32, label: &[u32], weight: u32) {
        debug_assert!(!label.is_empty(), "radix edges carry at least one component");
        // Idempotence: re-reaching an existing sub-DAG may re-derive an
        // identical edge (paper Example 2, step 8) — skip it.
        let node = &self.nodes[from as usize];
        if node
            .edges
            .iter()
            .any(|e| e.target == to && e.label.as_ref() == label)
        {
            return;
        }
        debug_assert!(
            node.edges.iter().all(|e| e.label[0] != label[0]),
            "radix invariant: one edge per leading component"
        );
        self.nodes[from as usize]
            .edges
            .push(Edge { target: to, label: label.into(), weight });
        self.nodes[to as usize].indegree += 1;
    }

    fn remove_edge(&mut self, from: u32, idx: usize) {
        let edge = self.nodes[from as usize].edges.swap_remove(idx);
        self.nodes[edge.target as usize].indegree -= 1;
    }

    /// Kahn topological order from the root over radix edges.
    fn topological_order(&self) -> Vec<u32> {
        let mut indegree: Vec<u32> = self.nodes.iter().map(|n| n.indegree).collect();
        let mut queue: std::collections::VecDeque<u32> = (0..self.nodes.len() as u32)
            .filter(|&n| indegree[n as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(n) = queue.pop_front() {
            order.push(n);
            for e in &self.nodes[n as usize].edges {
                indegree[e.target as usize] -= 1;
                if indegree[e.target as usize] == 0 {
                    queue.push_back(e.target);
                }
            }
        }
        debug_assert_eq!(order.len(), self.nodes.len(), "radix DAG must be acyclic");
        order
    }
}

/// Walks `comps` child ordinals down from `from`, returning the endpoint.
fn resolve_relative(ont: &Ontology, from: ConceptId, comps: &[u32]) -> ConceptId {
    let mut cur = from;
    for &comp in comps {
        cur = ont
            .child_at(cur, comp)
            .expect("edge labels are valid ontology paths");
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_ontology::fixture;

    /// Builds the paper's running example: d = {F,R,T,V}, q = {I,L,U}.
    fn example_dag() -> (fixture::Figure3, DRadixDag) {
        let fig = fixture::figure3();
        let dag = DRadixDag::build(&fig.ontology, &fig.example_document(), &fig.example_query());
        (fig, dag)
    }

    #[test]
    fn example2_materializes_expected_nodes() {
        // Figure 5(e): the constructed DAG holds A (root), G, I, J, R, U, V,
        // F, H, T, L — the member concepts plus branch points G, J, H.
        let (fig, dag) = example_dag();
        for name in ["A", "G", "I", "J", "R", "U", "V", "F", "H", "T", "L"] {
            assert!(dag.contains(fig.concept(name)), "node {name} missing");
        }
        // Compressed-away prefixes must NOT be materialized: B, E (merged
        // into the edge towards G), K, O, S, P, Q, and the untouched C, D,
        // M, N.
        for name in ["B", "C", "D", "E", "K", "M", "N", "O", "P", "Q", "S"] {
            assert!(!dag.contains(fig.concept(name)), "node {name} should be compressed");
        }
        assert_eq!(dag.stats().nodes, 11);
        assert_eq!(dag.stats().addresses, 10, "Table 1 lists 6 + 4 addresses");
    }

    #[test]
    fn tuned_distances_match_figure_5g() {
        // Figure 5(g) annotates every node with (doc distance, query
        // distance) after both traversals.
        let (fig, mut dag) = example_dag();
        dag.tune();
        let expect = [
            // (node, doc_dist, query_dist) — read off Figure 5(g) and
            // re-derived from the ontology by hand.
            ("I", 4, 0),
            ("L", 2, 0),
            ("U", 1, 0),
            ("F", 0, 2),
            ("R", 0, 1),
            ("T", 0, 4),
            ("V", 0, 5),
            ("G", 3, 1),
            ("J", 1, 2),
            ("H", 1, 1),
            ("A", 2, 4),
        ];
        for (name, dd, qd) in expect {
            let c = fig.concept(name);
            assert_eq!(dag.doc_distance(c), Some(dd), "doc distance of {name}");
            assert_eq!(dag.query_distance(c), Some(qd), "query distance of {name}");
        }
    }

    #[test]
    fn member_nodes_start_at_zero_before_tuning() {
        let (fig, dag) = example_dag();
        assert_eq!(dag.doc_distance(fig.concept("F")), Some(0));
        assert_eq!(dag.query_distance(fig.concept("F")), Some(UNSET));
        assert_eq!(dag.query_distance(fig.concept("I")), Some(0));
        assert_eq!(dag.doc_distance(fig.concept("I")), Some(UNSET));
        assert_eq!(dag.doc_distance(fig.concept("A")), Some(UNSET));
    }

    #[test]
    fn concept_in_both_sets_has_both_zero() {
        let fig = fixture::figure3();
        let shared = vec![fig.concept("R")];
        let mut dag = DRadixDag::build(&fig.ontology, &shared, &shared);
        dag.tune();
        assert_eq!(dag.doc_distance(fig.concept("R")), Some(0));
        assert_eq!(dag.query_distance(fig.concept("R")), Some(0));
    }

    #[test]
    fn absent_concept_reports_none() {
        let (fig, dag) = example_dag();
        assert_eq!(dag.doc_distance(fig.concept("M")), None);
        assert_eq!(dag.query_distance(fig.concept("M")), None);
    }

    #[test]
    fn dot_export_renders_figure5_style() {
        let (fig, mut dag) = example_dag();
        dag.tune();
        let dot = dag.to_dot(&fig.ontology);
        assert!(dot.starts_with("digraph dradix"));
        // Figure 5(g): node I carries (4, 0).
        let i = fig.concept("I").0;
        assert!(dot.contains(&format!("c{i} [label=\"I (4, 0)\"]")), "{dot}");
        // The compressed edge from the root towards G carries label 1.1.1.
        let a = fig.concept("A").0;
        let g = fig.concept("G").0;
        assert!(dot.contains(&format!("c{a} -> c{g} [label=\"1.1.1\"]")), "{dot}");
    }

    #[test]
    fn node_and_edge_iterators_are_consistent_with_stats() {
        let (_fig, dag) = example_dag();
        let s = dag.stats();
        assert_eq!(dag.nodes().count(), s.nodes);
        assert_eq!(dag.edges().count(), s.edges);
        // Every edge's endpoints are materialized nodes.
        for (from, to, label, weight) in dag.edges() {
            assert!(dag.contains(from) && dag.contains(to));
            assert_eq!(label.len() as u32, weight, "unit weights equal label length");
        }
    }

    #[test]
    fn stress_radix_invariants_on_large_random_inputs() {
        // Debug assertions inside add_edge/insert_suffix check the radix
        // invariants (one edge per leading component, acyclicity, concept
        // identity at full matches) on every operation; build many DAGs over
        // a large multi-parent ontology to shake them.
        use cbr_ontology::{GeneratorConfig, OntologyGenerator};
        let ont = OntologyGenerator::new(GeneratorConfig::snomed_like(3_000)).generate();
        let all: Vec<ConceptId> = ont.concepts().collect();
        for trial in 0..20u64 {
            let pick = |mul: u64, n: usize| -> Vec<ConceptId> {
                let mut v: Vec<ConceptId> = (0..n)
                    .map(|i| {
                        let h = (trial + 1)
                            .wrapping_mul(mul)
                            .wrapping_add(i as u64 * 0x9E37_79B9)
                            .wrapping_mul(0x2545_F491_4F6C_DD1D);
                        all[(h % all.len() as u64) as usize]
                    })
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            let doc = pick(31, 40);
            let query = pick(77, 15);
            let mut dag = DRadixDag::build(&ont, &doc, &query);
            dag.tune();
            // Every member concept is materialized with distance 0 on its
            // own side.
            for &c in &doc {
                assert_eq!(dag.doc_distance(c), Some(0));
            }
            for &c in &query {
                assert_eq!(dag.query_distance(c), Some(0));
            }
        }
    }

    #[test]
    fn multi_route_concepts_are_single_nodes() {
        // R, U, V each have two Dewey addresses (Table 1) but must appear
        // exactly once; their second route arrives through F's subtree.
        let (_fig, dag) = example_dag();
        let s = dag.stats();
        assert_eq!(s.nodes, 11);
        // Edge count: from Figure 5(g): A→G, A→I(no: I is under G)… count
        // instead: every node except A has ≥1 parent; R, U?, V gain second
        // parents through the F route. Assert the DAG is a DAG with more
        // edges than a tree would have.
        assert!(s.edges > s.nodes - 1, "DAG must contain multi-parent nodes");
    }
}
