//! The DRC algorithm: D-Radix construction + tuning + aggregation.

use crate::dag::DRadixDag;
use cbr_ontology::{ConceptId, Ontology};

/// The reusable build state of one [`Drc`]: the D-Radix node arena, the
/// epoch-stamped concept-slot table, the label arena, and the tuning
/// scratch. Cleared —
/// never reallocated — between document probes, so the per-document DAG
/// build at the heart of every kNDS EXAMINE becomes allocation-free once
/// warm.
///
/// A scratch can be detached with [`Drc::into_scratch`] and re-attached
/// with [`Drc::with_scratch`], which is how query workspaces carry DAG
/// capacity across queries (and across engine borrows) without tying a
/// workspace to one ontology lifetime.
#[derive(Debug, Clone, Default)]
pub struct DagScratch {
    dag: DRadixDag,
}

impl DagScratch {
    /// An empty scratch; capacity accrues on first use.
    pub fn new() -> DagScratch {
        DagScratch::default()
    }

    /// Approximate heap footprint of the retained allocations, in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.dag.footprint_bytes()
    }
}

/// Computes document-query (Equation 2) and document-document
/// (Equation 3) distances in `O((|Pd| + |Pq|) log(|Pd| + |Pq|))` via the
/// D-Radix DAG.
///
/// One `Drc` is cheap to create and borrows the ontology; each distance
/// call builds and tunes a DAG (the paper's Algorithm 1 runs per
/// document-query pair at query time — no precomputation is required,
/// which is what lets new EMRs join the collection instantly, Section 1).
/// The value owns a [`DagScratch`] that the distance methods rebuild in
/// place, so probing many documents against one query allocates only on
/// the first few probes; hence those methods take `&mut self`.
#[derive(Debug, Clone)]
pub struct Drc<'a> {
    ontology: &'a Ontology,
    weights: Option<&'a cbr_ontology::EdgeWeights>,
    scratch: DagScratch,
}

impl<'a> Drc<'a> {
    /// Creates the algorithm over `ontology` (materializes the path table
    /// on first use). Unit edge weights — the paper's metric.
    pub fn new(ontology: &'a Ontology) -> Self {
        Drc { ontology, weights: None, scratch: DagScratch::new() }
    }

    /// Creates a weighted-edge variant (the Section 7 future-work
    /// prototype): every distance below prices ontology edges by
    /// `weights` instead of 1.
    pub fn with_weights(ontology: &'a Ontology, weights: &'a cbr_ontology::EdgeWeights) -> Self {
        Drc { ontology, weights: Some(weights), scratch: DagScratch::new() }
    }

    /// Replaces the owned scratch, adopting capacity warmed elsewhere
    /// (e.g. by a pooled query workspace).
    pub fn with_scratch(mut self, scratch: DagScratch) -> Self {
        self.scratch = scratch;
        self
    }

    /// Releases the owned scratch so its capacity can outlive this `Drc`.
    pub fn into_scratch(self) -> DagScratch {
        self.scratch
    }

    /// The ontology in use.
    pub fn ontology(&self) -> &'a Ontology {
        self.ontology
    }

    /// Approximate heap footprint of the retained scratch, in bytes.
    pub fn scratch_footprint_bytes(&self) -> usize {
        self.scratch.footprint_bytes()
    }

    /// Builds and tunes the D-Radix DAG for `(doc, query)` into the owned
    /// scratch and returns it for reading. This is the per-document probe
    /// at the core of kNDS's EXAMINE step: allocation-free once the
    /// scratch has warmed up.
    pub fn probe(&mut self, doc: &[ConceptId], query: &[ConceptId]) -> &DRadixDag {
        let dag = &mut self.scratch.dag;
        match self.weights {
            None => dag.build_into(self.ontology, doc, query),
            Some(w) => dag.build_weighted_into(self.ontology, doc, query, w),
        }
        dag.tune();
        #[cfg(debug_assertions)]
        {
            let tuned = dag.validate_tuned();
            debug_assert!(tuned.is_ok(), "D-Radix tuning invariant violated: {tuned:?}");
            if self.weights.is_none() {
                // Unit-weight probes admit a cheap oracle: compare a few
                // tuned distances against the brute-force Rada walk.
                let spot = dag.spot_check(self.ontology, doc, query, 2);
                debug_assert!(spot.is_ok(), "D-Radix distance spot-check failed: {spot:?}");
            }
        }
        dag
    }

    /// Builds and tunes a *fresh* D-Radix DAG for `(doc, query)`, leaving
    /// the owned scratch untouched. Exposed for inspection, tracing, and
    /// tests; the distance methods use [`probe`](Self::probe).
    pub fn build_dag(&self, doc: &[ConceptId], query: &[ConceptId]) -> DRadixDag {
        let mut dag = match self.weights {
            None => DRadixDag::build(self.ontology, doc, query),
            Some(w) => DRadixDag::build_weighted(self.ontology, doc, query, w),
        };
        dag.tune();
        dag
    }

    /// `Ddq(d, q) = Σᵢ Ddc(d, qᵢ)` (Equation 2) — the RDS distance.
    ///
    /// # Panics
    ///
    /// Panics if `query` is empty; an empty *document* yields
    /// [`crate::INFINITE`] (no concept can cover any query node).
    pub fn document_query_distance(&mut self, doc: &[ConceptId], query: &[ConceptId]) -> u64 {
        assert!(!query.is_empty(), "RDS distance requires a non-empty query");
        if doc.is_empty() {
            return crate::INFINITE;
        }
        let dag = self.probe(doc, query);
        let mut sum = 0u64;
        for &qi in query {
            // Every query concept is materialized by construction; a miss
            // means a corrupt DAG (caught by the debug validators), so the
            // release path degrades to "infinitely far" instead of panicking.
            let Some(d) = dag.doc_distance(qi) else {
                debug_assert!(false, "query concept {qi:?} missing from the DAG");
                return crate::INFINITE;
            };
            debug_assert_ne!(d, u32::MAX, "single-rooted ontology has finite distances");
            sum += d as u64;
        }
        sum
    }

    /// `Ddq(d, q) / |q|` — the query-size-normalized form the paper uses
    /// when merging scores across expanded queries (footnote 3).
    pub fn document_query_distance_normalized(
        &mut self,
        doc: &[ConceptId],
        query: &[ConceptId],
    ) -> f64 {
        let d = self.document_query_distance(doc, query);
        if d == crate::INFINITE {
            f64::INFINITY
        } else {
            d as f64 / query.len() as f64
        }
    }

    /// `Ddd(d1, d2)` (Equation 3) — the symmetric SDS distance with equal
    /// concept weights:
    ///
    /// ```text
    /// Ddd = Σ_{c ∈ d1} Ddc(d2, c) / |C1|  +  Σ_{c ∈ d2} Ddc(d1, c) / |C2|
    /// ```
    ///
    /// Returns `f64::INFINITY` if either document is empty.
    pub fn document_document_distance(&mut self, d1: &[ConceptId], d2: &[ConceptId]) -> f64 {
        self.document_document_distance_weighted(d1, d2, None)
    }

    /// Equation 3 generalized with per-concept weights (Melton et al.'s
    /// original inter-patient measure; the paper fixes all weights to 1).
    /// `weights[c.index()]` scales concept `c`'s contribution on both
    /// sides; normalizers become weight sums.
    pub fn document_document_distance_weighted(
        &mut self,
        d1: &[ConceptId],
        d2: &[ConceptId],
        weights: Option<&[f64]>,
    ) -> f64 {
        if d1.is_empty() || d2.is_empty() {
            return f64::INFINITY;
        }
        // Build one DAG treating d1 as the "document" and d2 as the
        // "query"; both directions read off the same tuned structure.
        let dag = self.probe(d1, d2);
        let w = |c: ConceptId| weights.map_or(1.0, |ws| ws.get(c.index()).copied().unwrap_or(1.0));

        // Member concepts are materialized by construction; a miss means a
        // corrupt DAG (caught by the debug validators), so the release path
        // degrades to "infinitely far" instead of panicking.
        let mut sum_d2 = 0.0; // Σ_{c ∈ d2} Ddc(d1, c) — distances from d1 side
        let mut norm_d2 = 0.0;
        for &c in d2 {
            let Some(d) = dag.doc_distance(c) else {
                debug_assert!(false, "d2 concept {c:?} missing from the DAG");
                return f64::INFINITY;
            };
            sum_d2 += w(c) * d as f64;
            norm_d2 += w(c);
        }
        let mut sum_d1 = 0.0; // Σ_{c ∈ d1} Ddc(d2, c) — distances from d2 side
        let mut norm_d1 = 0.0;
        for &c in d1 {
            let Some(d) = dag.query_distance(c) else {
                debug_assert!(false, "d1 concept {c:?} missing from the DAG");
                return f64::INFINITY;
            };
            sum_d1 += w(c) * d as f64;
            norm_d1 += w(c);
        }
        // bound: proven — norms sum default-1 weights over non-empty concept sets
        sum_d1 / norm_d1 + sum_d2 / norm_d2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_ontology::fixture;

    #[test]
    fn example1_rds_distance_is_seven() {
        // Ddq(d, q) = Ddc(d,I) + Ddc(d,L) + Ddc(d,U) = 4 + 2 + 1 = 7.
        let fig = fixture::figure3();
        let mut drc = Drc::new(&fig.ontology);
        let d = fig.example_document();
        let q = fig.example_query();
        assert_eq!(drc.document_query_distance(&d, &q), 7);
        assert!((drc.document_query_distance_normalized(&d, &q) - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn example1_sds_distance() {
        // Treating q = {I, L, U} as a query document: the d-side distances
        // are the query distances of F, R, T, V (2, 1, 4, 5) and the
        // q-side distances are 4, 2, 1.
        let fig = fixture::figure3();
        let mut drc = Drc::new(&fig.ontology);
        let d = fig.example_document();
        let q = fig.example_query();
        let expected = (2.0 + 1.0 + 4.0 + 5.0) / 4.0 + (4.0 + 2.0 + 1.0) / 3.0;
        assert!((drc.document_document_distance(&d, &q) - expected).abs() < 1e-12);
    }

    #[test]
    fn sds_distance_is_symmetric() {
        let fig = fixture::figure3();
        let mut drc = Drc::new(&fig.ontology);
        let d = fig.example_document();
        let q = fig.example_query();
        let ab = drc.document_document_distance(&d, &q);
        let ba = drc.document_document_distance(&q, &d);
        assert!((ab - ba).abs() < 1e-12, "Equation 3 is symmetric: {ab} vs {ba}");
    }

    #[test]
    fn identical_documents_have_zero_distance() {
        let fig = fixture::figure3();
        let mut drc = Drc::new(&fig.ontology);
        let d = fig.example_document();
        assert_eq!(drc.document_document_distance(&d, &d), 0.0);
        assert_eq!(drc.document_query_distance(&d, &d), 0);
    }

    #[test]
    fn empty_document_is_infinitely_far() {
        let fig = fixture::figure3();
        let mut drc = Drc::new(&fig.ontology);
        let q = fig.example_query();
        assert_eq!(drc.document_query_distance(&[], &q), crate::INFINITE);
        assert_eq!(drc.document_document_distance(&[], &q), f64::INFINITY);
        assert_eq!(drc.document_document_distance(&q, &[]), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "non-empty query")]
    fn empty_query_panics() {
        let fig = fixture::figure3();
        Drc::new(&fig.ontology).document_query_distance(&fig.example_document(), &[]);
    }

    #[test]
    fn weighted_distance_reduces_to_unweighted_with_unit_weights() {
        let fig = fixture::figure3();
        let mut drc = Drc::new(&fig.ontology);
        let d = fig.example_document();
        let q = fig.example_query();
        let unit = vec![1.0; fig.ontology.len()];
        let a = drc.document_document_distance(&d, &q);
        let b = drc.document_document_distance_weighted(&d, &q, Some(&unit));
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn weighted_edges_match_weighted_brute_force_on_figure3() {
        use cbr_ontology::weighted;
        let fig = fixture::figure3();
        let ont = &fig.ontology;
        let root = ont.root();
        let g = fig.concept("G");
        // Non-uniform weights: root edges cost 3, G's edges cost 2.
        let w = cbr_ontology::EdgeWeights::from_fn(ont, |p, _| {
            if p == root {
                3
            } else if p == g {
                2
            } else {
                1
            }
        });
        let mut drc = Drc::with_weights(ont, &w);
        let d = fig.example_document();
        let q = fig.example_query();
        assert_eq!(
            drc.document_query_distance(&d, &q),
            weighted::document_query_distance(ont, &w, &d, &q)
        );
        let x = drc.document_document_distance(&d, &q);
        let y = weighted::document_document_distance(ont, &w, &d, &q);
        assert!((x - y).abs() < 1e-9, "{x} vs {y}");
    }

    #[test]
    fn weighted_edges_match_weighted_brute_force_on_random_dags() {
        use cbr_ontology::weighted;
        use cbr_ontology::{GeneratorConfig, OntologyGenerator};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..3u64 {
            let ont = OntologyGenerator::new(GeneratorConfig::small(120).with_seed(3_000 + seed))
                .generate();
            // Pseudo-random weights in 1..=4 keyed on the parent id.
            let w = cbr_ontology::EdgeWeights::from_fn(&ont, |p, c| {
                1 + ((p.0.wrapping_mul(31).wrapping_add(c.0)) % 4)
            });
            let mut drc = Drc::with_weights(&ont, &w);
            let mut rng = StdRng::seed_from_u64(seed);
            let all: Vec<ConceptId> = ont.concepts().collect();
            for _ in 0..8 {
                let pick = |rng: &mut StdRng, n: usize| -> Vec<ConceptId> {
                    let mut v: Vec<ConceptId> =
                        (0..n).map(|_| all[rng.random_range(0..all.len())]).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                };
                let d = pick(&mut rng, 7);
                let q = pick(&mut rng, 4);
                assert_eq!(
                    drc.document_query_distance(&d, &q),
                    weighted::document_query_distance(&ont, &w, &d, &q),
                    "seed {seed}: weighted Ddq mismatch d={d:?} q={q:?}"
                );
            }
        }
    }

    #[test]
    fn weighted_distance_emphasizes_heavy_concepts() {
        let fig = fixture::figure3();
        let mut drc = Drc::new(&fig.ontology);
        let d = fig.example_document();
        let q = fig.example_query();
        // Up-weighting I (the farthest query concept, Ddc = 4) must
        // increase the distance relative to equal weights.
        let mut w = vec![1.0; fig.ontology.len()];
        w[fig.concept("I").index()] = 10.0;
        let heavy = drc.document_document_distance_weighted(&d, &q, Some(&w));
        let plain = drc.document_document_distance(&d, &q);
        assert!(heavy > plain, "{heavy} should exceed {plain}");
    }

    #[test]
    fn scratch_roundtrips_through_detach_and_reattach() {
        let fig = fixture::figure3();
        let d = fig.example_document();
        let q = fig.example_query();
        let mut drc = Drc::new(&fig.ontology);
        assert_eq!(drc.document_query_distance(&d, &q), 7);
        let warm = drc.scratch_footprint_bytes();
        assert!(warm > 0, "probing must warm the scratch");
        let scratch = drc.into_scratch();
        let mut again = Drc::new(&fig.ontology).with_scratch(scratch);
        assert_eq!(again.scratch_footprint_bytes(), warm);
        assert_eq!(again.document_query_distance(&d, &q), 7);
    }

    #[test]
    fn repeated_probes_reuse_the_scratch() {
        let fig = fixture::figure3();
        let d = fig.example_document();
        let q = fig.example_query();
        let d2 = vec![fig.concept("M"), fig.concept("T")];
        let mut drc = Drc::new(&fig.ontology);
        // Warm up on both shapes, then assert the footprint is stable.
        drc.document_query_distance(&d, &q);
        drc.document_document_distance(&d, &d2);
        let warm = drc.scratch_footprint_bytes();
        for _ in 0..4 {
            assert_eq!(drc.document_query_distance(&d, &q), 7);
            drc.document_document_distance(&d, &d2);
        }
        assert_eq!(drc.scratch_footprint_bytes(), warm, "steady-state probes must not grow");
    }
}
