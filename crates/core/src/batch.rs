//! Parallel batch query evaluation.
//!
//! Section 6.1 of the paper sketches a MapReduce formulation of kNDS for
//! scale-out; the single-machine analogue is running many queries
//! concurrently over the shared immutable indexes. Query latencies vary
//! wildly (a selective query terminates in two BFS levels, a broad one
//! probes DRC hundreds of times), so static chunking wastes cores — a
//! shared work queue keeps them busy.
//!
//! Workers and queues go through the [`sched::sync`] facade so the
//! `cbr-sched` model checker can explore the runner's interleavings. A
//! worker that panics mid-query reports that slot as
//! [`EngineError::WorkerPanicked`] and carries on with a fresh workspace
//! instead of tearing the whole batch down.

use crate::engine::{Engine, EngineError};
use crate::snapshot::EngineSnapshot;
use cbr_knds::{KndsWorkspace, QueryResult};
use cbr_ontology::ConceptId;
use sched::sync::{available_parallelism, scope, SegQueue};

/// Which query type a batch runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchKind {
    /// Relevant-document search for each concept-set query.
    Rds,
    /// Similar-document search, treating each entry as a query document.
    Sds,
}

impl Engine {
    /// Evaluates `queries` in parallel against the engine's current
    /// snapshot; see [`EngineSnapshot::batch`].
    pub fn batch(
        &self,
        kind: BatchKind,
        queries: &[Vec<ConceptId>],
        k: usize,
        threads: usize,
    ) -> Vec<Result<QueryResult, EngineError>> {
        self.snapshot().batch(kind, queries, k, threads)
    }
}

impl EngineSnapshot {
    /// Evaluates `queries` in parallel across up to `threads` workers
    /// (0 = all available cores). Results come back in input order; each
    /// slot is `Err` exactly when the corresponding sequential call would
    /// have been. The whole batch runs against this one snapshot — every
    /// worker sees the same epoch and no worker ever takes a lock.
    pub fn batch(
        &self,
        kind: BatchKind,
        queries: &[Vec<ConceptId>],
        k: usize,
        threads: usize,
    ) -> Vec<Result<QueryResult, EngineError>> {
        let threads = if threads == 0 { available_parallelism() } else { threads };
        let threads = threads.min(queries.len().max(1));

        let (concepts, docs) = self.workspace_hint();
        if threads <= 1 {
            let mut ws = KndsWorkspace::new();
            ws.reserve(concepts, docs);
            return queries.iter().map(|q| self.run_one(kind, q, k, &mut ws)).collect();
        }

        let work: SegQueue<usize> = SegQueue::new();
        for i in 0..queries.len() {
            work.push(i);
        }
        let mut slots: Vec<Option<Result<QueryResult, EngineError>>> =
            (0..queries.len()).map(|_| None).collect();
        let slot_queue: SegQueue<(usize, Result<QueryResult, EngineError>)> = SegQueue::new();

        scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    // One workspace per worker, reused across every query
                    // the worker steals: after the first query the worker's
                    // hot loop stops allocating. Pre-sizing the dense tables
                    // moves even the first query's growth out of the loop.
                    let mut ws = KndsWorkspace::new();
                    ws.reserve(concepts, docs);
                    while let Some(i) = work.pop() {
                        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            self.run_one(kind, &queries[i], k, &mut ws)
                        }));
                        match run {
                            Ok(r) => slot_queue.push((i, r)),
                            Err(payload) => {
                                // The workspace may hold partial state from
                                // the aborted query; replace it rather than
                                // reuse it dirty.
                                ws = KndsWorkspace::new();
                                ws.reserve(concepts, docs);
                                let msg = panic_text(payload.as_ref());
                                slot_queue.push((i, Err(EngineError::WorkerPanicked(msg))));
                            }
                        }
                    }
                });
            }
        });
        while let Some((i, r)) = slot_queue.pop() {
            slots[i] = Some(r);
        }
        // Every index was pushed to `slot_queue` exactly once (the worker
        // converts panics into `Err` slots), so a `None` here means the
        // drain itself lost a result — report it, don't panic the batch.
        slots
            .into_iter()
            .map(|s| {
                s.unwrap_or_else(|| {
                    Err(EngineError::WorkerPanicked("result slot was never filled".into()))
                })
            })
            .collect()
    }

    fn run_one(
        &self,
        kind: BatchKind,
        query: &[ConceptId],
        k: usize,
        ws: &mut KndsWorkspace,
    ) -> Result<QueryResult, EngineError> {
        match kind {
            BatchKind::Rds => self.rds_with(ws, query, k),
            BatchKind::Sds => self.sds_with(ws, query, k),
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;
    use cbr_corpus::{CorpusGenerator, CorpusProfile};
    use cbr_ontology::{GeneratorConfig, OntologyGenerator};

    fn engine() -> Engine {
        let ont = OntologyGenerator::new(GeneratorConfig::small(1_500)).generate();
        let corpus = CorpusGenerator::new(
            &ont,
            CorpusProfile::radio_like().with_num_docs(80).with_mean_concepts(10.0),
        )
        .generate();
        EngineBuilder::new().build(ont, corpus)
    }

    fn queries(e: &Engine, n: usize) -> Vec<Vec<ConceptId>> {
        e.corpus()
            .documents()
            .filter(|d| d.num_concepts() >= 2)
            .take(n)
            .map(|d| d.concepts()[..2].to_vec())
            .collect()
    }

    #[test]
    fn batch_matches_sequential_in_order() {
        let e = engine();
        let qs = queries(&e, 12);
        let parallel = e.batch(BatchKind::Rds, &qs, 5, 4);
        for (q, out) in qs.iter().zip(&parallel) {
            let seq = e.rds(q, 5).unwrap();
            let par = out.as_ref().unwrap();
            for (a, b) in seq.results.iter().zip(par.results.iter()) {
                assert_eq!(a.doc, b.doc);
                assert_eq!(a.distance, b.distance);
            }
        }
    }

    #[test]
    fn batch_sds_works_and_reports_errors_positionally() {
        let e = engine();
        let mut qs = queries(&e, 4);
        qs.insert(2, Vec::new()); // empty query -> EmptyQuery error in place
        let out = e.batch(BatchKind::Sds, &qs, 3, 2);
        assert_eq!(out.len(), 5);
        assert!(out[2].is_err());
        for (i, r) in out.iter().enumerate() {
            if i != 2 {
                assert!(r.is_ok(), "slot {i}");
            }
        }
    }

    #[test]
    fn single_thread_path_matches() {
        let e = engine();
        let qs = queries(&e, 3);
        let a = e.batch(BatchKind::Rds, &qs, 4, 1);
        let b = e.batch(BatchKind::Rds, &qs, 4, 3);
        for (x, y) in a.iter().zip(b.iter()) {
            let (x, y) = (x.as_ref().unwrap(), y.as_ref().unwrap());
            assert_eq!(x.results.len(), y.results.len());
            for (rx, ry) in x.results.iter().zip(y.results.iter()) {
                assert_eq!(rx.doc, ry.doc);
            }
        }
    }

    #[test]
    fn batch_workers_reuse_workspaces() {
        let e = engine();
        let qs = queries(&e, 10);
        let seq = e.batch(BatchKind::Rds, &qs, 3, 1);
        let reused: usize = seq.iter().map(|r| r.as_ref().unwrap().metrics.workspace_reused).sum();
        assert_eq!(reused, qs.len() - 1, "sequential path shares one workspace");
        let par = e.batch(BatchKind::Rds, &qs, 3, 2);
        let reused: usize = par.iter().map(|r| r.as_ref().unwrap().metrics.workspace_reused).sum();
        assert!(reused >= qs.len() - 2, "each worker is cold at most once, got {reused}");
    }

    #[test]
    fn empty_batch_is_empty() {
        let e = engine();
        assert!(e.batch(BatchKind::Rds, &[], 5, 0).is_empty());
    }

    #[test]
    fn panicking_worker_reports_slot_instead_of_dropping_it() {
        let e = engine();
        let qs = queries(&e, 6);
        // k = 0 trips the kNDS precondition assert inside every worker;
        // the batch must still return one slot per query, each reporting
        // the panic, rather than unwinding or silently dropping slots.
        let out = e.batch(BatchKind::Rds, &qs, 0, 3);
        assert_eq!(out.len(), qs.len());
        for (i, r) in out.iter().enumerate() {
            assert!(
                matches!(r, Err(EngineError::WorkerPanicked(_))),
                "slot {i} should report the worker panic, got {r:?}"
            );
        }
        // The engine stays healthy for the next (valid) batch.
        let ok = e.batch(BatchKind::Rds, &qs, 3, 2);
        assert!(ok.iter().all(|r| r.is_ok()));
    }
}
