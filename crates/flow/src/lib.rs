//! `cbr-flow`: call-graph dataflow lints that prove the zero-allocation
//! query path.
//!
//! Where `cbr-audit` lints token streams file by file, this crate lifts
//! the same hand-rolled [`scanner`] into an item-level [`parser`]
//! (functions, impl blocks, call sites), builds an approximate
//! whole-workspace call [`graph`], and runs worklist propagation to
//! check *flow* properties the token rules cannot see:
//!
//! * **F01/F04** — no allocation and no panic source transitively
//!   reachable from the hot-path query roots on the release graph;
//! * **F02** — workspace pool pop/push balance across early exits;
//! * **F03** — no discarded `Result` from fallible workspace calls;
//! * **F05** — dead `pub` exports.
//!
//! Findings ratchet through `flow.allow` (same exact-count grammar as
//! `audit.allow`). The shared [`scanner`]/[`report`]/[`allowlist`]
//! modules live here — at the bottom of the tooling stack — and
//! `cbr-audit` re-exports them, so this crate has zero dependencies.
//!
//! ```sh
//! cargo run -p cbr-flow                          # lint the workspace
//! cargo run -p cbr-flow -- --json                # machine-readable report
//! cargo run -p cbr-flow -- --fixtures --expect-findings  # prove non-vacuity
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod graph;
pub mod parser;
pub mod report;
pub mod rules;
pub mod scanner;

use graph::{CrateDeps, Graph, GraphStats};
use parser::{normalize_crate_ident, Workspace};
use report::Report;
use scanner::SourceFile;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// The workspace root, resolved from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/flow sits two levels under the workspace root")
        .to_path_buf()
}

/// Source directories the analyses walk, relative to the analysis root.
/// `vendor/` is excluded: third-party placeholder code is not ours to
/// lint (its manifests still go through audit A06).
const SOURCE_ROOTS: [&str; 4] = ["src", "crates", "tests", "examples"];

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            // `fixtures` trees hold seeded-violation corpora for the
            // flow rules; they are analyzed on demand, never as part of
            // the real workspace.
            if name != "target" && name != "fixtures" && !name.starts_with('.') {
                walk_rs(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Loads and scans every source file under `root`.
pub fn collect_sources(root: &Path) -> Vec<SourceFile> {
    let mut paths = Vec::new();
    for sub in SOURCE_ROOTS {
        walk_rs(&root.join(sub), &mut paths);
    }
    paths
        .into_iter()
        .filter_map(|p| {
            let rel = p.strip_prefix(root).ok()?.to_str()?.to_string();
            let text = std::fs::read_to_string(&p).ok()?;
            Some(SourceFile::parse(&rel, &text))
        })
        .collect()
}

/// Workspace manifests: root, member crates, and the vendored stubs
/// (which must also never grow registry dependencies).
pub fn collect_manifests(root: &Path) -> Vec<(String, String)> {
    let mut rels = vec!["Cargo.toml".to_string()];
    for sub in ["crates", "vendor"] {
        if let Ok(entries) = std::fs::read_dir(root.join(sub)) {
            let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
            dirs.sort();
            for d in dirs {
                let m = d.join("Cargo.toml");
                if m.is_file() {
                    if let Ok(rel) = m.strip_prefix(root) {
                        rels.push(rel.to_string_lossy().into_owned());
                    }
                }
            }
        }
    }
    rels.into_iter()
        .filter_map(|rel| {
            let text = std::fs::read_to_string(root.join(&rel)).ok()?;
            Some((rel, text))
        })
        .collect()
}

/// Derives the workspace crate-dependency relation from manifests.
/// Crates are keyed by their `crates/<dir>` name (matching
/// [`parser::module_path`]); the root package is `repro`. Dependency
/// keys are normalized package names, so `cbr-sched-model = ..` becomes
/// an edge to `sched`.
pub fn crate_deps(manifests: &[(String, String)]) -> CrateDeps {
    let mut out = CrateDeps::default();
    for (rel, text) in manifests {
        let krate = match rel.strip_suffix("Cargo.toml").map(|p| p.trim_end_matches('/')) {
            Some("") => "repro".to_string(),
            Some(dir) => match dir.strip_prefix("crates/") {
                Some(name) => name.to_string(),
                None => continue, // vendor stubs are not analyzed crates
            },
            None => continue,
        };
        let mut section = String::new();
        let mut deps = BTreeSet::new();
        for line in text.lines() {
            let t = line.trim();
            if let Some(h) = t.strip_prefix('[') {
                section = h.trim_end_matches(']').to_string();
                continue;
            }
            if matches!(
                section.as_str(),
                "dependencies" | "dev-dependencies" | "build-dependencies"
            ) {
                if let Some((key, _)) = t.split_once('=') {
                    let key = key.trim().trim_matches('"');
                    if !key.is_empty() && !key.starts_with('#') {
                        deps.insert(normalize_crate_ident(&key.replace('-', "_")));
                    }
                }
            }
        }
        out.deps.insert(krate, deps);
    }
    out
}

/// The flow report: findings plus call-graph statistics.
#[derive(Debug)]
pub struct FlowReport {
    /// Findings and passed-rule lines, allowlist already applied.
    pub report: Report,
    /// Call-graph statistics for the resolution acceptance gate.
    pub stats: GraphStats,
}

impl FlowReport {
    /// Human-readable report with the graph summary line.
    pub fn render_text(&self) -> String {
        format!(
            "{}graph: {} fns, {} edges, {}/{} internal calls resolved ({:.1}%)\n",
            self.report.render_text(),
            self.stats.functions,
            self.stats.edges,
            self.stats.calls_resolved,
            self.stats.calls_internal,
            self.stats.resolution() * 100.0,
        )
    }

    /// JSON report: the shared [`Report`] shape plus graph statistics.
    pub fn render_json(&self) -> String {
        let base = self.report.render_json();
        let trimmed = base.trim_end().trim_end_matches('}').trim_end().trim_end_matches(',');
        format!(
            "{trimmed},\n  \"functions\": {},\n  \"edges\": {},\n  \"calls_total\": {},\n  \
             \"calls_internal\": {},\n  \"calls_resolved\": {},\n  \"resolution\": {:.3}\n}}\n",
            self.stats.functions,
            self.stats.edges,
            self.stats.calls_total,
            self.stats.calls_internal,
            self.stats.calls_resolved,
            self.stats.resolution(),
        )
    }
}

/// A workspace scanned, parsed, and call-graph-built exactly once.
///
/// Every analyzer in the stack (flow, race, bound, cplx) starts from the
/// same three artifacts — the scanned [`Workspace`], the manifest-derived
/// [`CrateDeps`], and the [`Graph`] built from them. `cbr-audit all`
/// builds one `ParsedWorkspace` and hands it to each analyzer's
/// `run_parsed` entry point, so the five-analyzer gate parses each source
/// file exactly once instead of once per analyzer.
#[derive(Debug)]
pub struct ParsedWorkspace {
    /// Parsed items and source files.
    pub ws: Workspace,
    /// Crate-dependency relation from the workspace manifests.
    pub deps: CrateDeps,
    /// The approximate call graph over `ws` under `deps`.
    pub graph: Graph,
}

impl ParsedWorkspace {
    /// Scans, parses, and builds the call graph for the workspace at
    /// `root`.
    pub fn load(root: &Path) -> ParsedWorkspace {
        let deps = crate_deps(&collect_manifests(root));
        let ws = Workspace::parse(collect_sources(root));
        let graph = Graph::build(&ws, &deps);
        ParsedWorkspace { ws, deps, graph }
    }
}

/// Analyzes scanned sources with an allowlist (`origin` names the
/// allowlist file in parse-error findings) under a crate-dependency
/// constraint.
pub fn analyze(files: Vec<SourceFile>, allow: &str, origin: &str, deps: &CrateDeps) -> FlowReport {
    let ws = Workspace::parse(files);
    let graph = Graph::build(&ws, deps);
    let pw = ParsedWorkspace { ws, deps: deps.clone(), graph };
    analyze_parsed(&pw, allow, origin)
}

/// [`analyze`] over an already-parsed workspace (the parse-once path).
pub fn analyze_parsed(pw: &ParsedWorkspace, allow: &str, origin: &str) -> FlowReport {
    let findings = allowlist::ratchet(rules::run(&pw.ws, &pw.graph), allow, origin);

    let mut report = Report { findings, passed: Vec::new() };
    if report.ok() {
        for rule in ["F01", "F02", "F03", "F04", "F05"] {
            report.passed.push(format!(
                "flow {rule} ({} fns, {} edges)",
                pw.ws.fns.len(),
                pw.graph.stats.edges
            ));
        }
    }
    FlowReport { report, stats: pw.graph.stats }
}

/// Runs the flow analysis over the real workspace with `flow.allow`.
pub fn run_workspace(root: &Path) -> FlowReport {
    run_parsed(root, &ParsedWorkspace::load(root))
}

/// [`run_workspace`] over a shared [`ParsedWorkspace`].
pub fn run_parsed(root: &Path, pw: &ParsedWorkspace) -> FlowReport {
    let allow = allowlist::load(root, "flow.allow");
    analyze_parsed(pw, &allow, "flow.allow")
}

/// Runs the flow analysis over the seeded-violation fixture tree (no
/// allowlist — every seeded finding must surface — and no dependency
/// constraint, since the fixture tree has no manifests).
pub fn run_fixtures(root: &Path) -> FlowReport {
    analyze(
        collect_sources(&root.join("crates/flow/fixtures")),
        "",
        "flow.allow",
        &CrateDeps::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The flow lint must be silent on its own tree modulo `flow.allow`.
    #[test]
    fn current_tree_is_clean() {
        let fr = run_workspace(&workspace_root());
        assert!(fr.report.ok(), "flow findings on the current tree:\n{}", fr.render_text());
    }

    /// The acceptance gate: re-export-aware fallback plus constructor /
    /// aliased-assoc classification push internal resolution above 99.5%
    /// — `cbr-race` inherits this graph, so the bar is a regression test.
    #[test]
    fn resolution_meets_the_acceptance_bar() {
        let fr = run_workspace(&workspace_root());
        assert!(
            fr.stats.resolution() >= 0.995,
            "resolution {:.4} below 0.995 ({} / {} internal calls)",
            fr.stats.resolution(),
            fr.stats.calls_resolved,
            fr.stats.calls_internal
        );
    }

    #[test]
    fn collectors_skip_fixture_trees() {
        let files = collect_sources(&workspace_root());
        assert!(files.iter().any(|f| f.rel == "crates/knds/src/engine.rs"));
        assert!(!files.iter().any(|f| f.rel.contains("fixtures/")));
    }

    #[test]
    fn json_report_carries_graph_stats() {
        let fr = run_workspace(&workspace_root());
        let json = fr.render_json();
        for key in ["\"ok\"", "\"functions\"", "\"edges\"", "\"resolution\""] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
    }
}
