//! The D-Radix DAG and the DRC distance-calculation algorithm.
//!
//! This crate implements the first core contribution of *Efficient
//! Concept-based Document Ranking* (Section 4): computing the
//! document-query distance (Equation 2) and the symmetric
//! document-document distance (Equation 3) in
//! `O((|Pq| + |Pd|) · log(|Pq| + |Pd|))` instead of the quadratic
//! per-concept-pair baseline.
//!
//! * [`DRadixDag`] — Definition 3's index: a path-compressed radix
//!   structure over the Dewey addresses of the document ∪ query concepts.
//!   Because every Dewey prefix identifies a unique ontology node, radix
//!   nodes are identified by [`ConceptId`](cbr_ontology::ConceptId); a concept reachable over
//!   several root paths is a single node with several parent edges.
//! * [`Drc`] — the DRC algorithm: construction (Algorithm 1 +
//!   Function InsertPath), distance tuning (one bottom-up and one top-down
//!   relaxation pass, Equation 4), and the final aggregation for RDS and
//!   SDS queries.
//! * [`brute`] — the BL baseline of Section 6.2: per-pair minimum concept
//!   distances, quadratic in the concept counts. Used both as the
//!   experimental comparator (Figure 6) and as the test oracle.
//!
//! ```
//! use cbr_ontology::fixture;
//! use cbr_dradix::Drc;
//!
//! let fig3 = fixture::figure3();
//! // `Drc` owns a reusable DAG scratch, so distance calls take `&mut`.
//! let mut drc = Drc::new(&fig3.ontology);
//! // Example 1 of the paper: Ddq(d, q) = 4 + 2 + 1 = 7.
//! let d = fig3.example_document();
//! let q = fig3.example_query();
//! assert_eq!(drc.document_query_distance(&d, &q), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute;
#[cfg(feature = "counters")]
pub mod counters;
pub mod dag;
pub mod drc;

pub use dag::{DRadixDag, DagStats, DagViolation};
pub use drc::{DagScratch, Drc};

/// Sentinel for "distance not defined" (empty document or query in a
/// normalized document-document distance).
pub const INFINITE: u64 = u64::MAX;
