//! Schedule IDs: a compact, replayable encoding of one execution's
//! scheduling decisions.
//!
//! Each coordinator step where more than one operation was enabled
//! contributes one base-36 digit: the index of the chosen thread within
//! the sorted enabled set. Steps with a single enabled operation are
//! forced and contribute nothing, so IDs stay short even for long
//! executions. The empty schedule (every step forced) prints as `"-"`.

const DIGITS: &[u8; 36] = b"0123456789abcdefghijklmnopqrstuvwxyz";

/// Encodes `(enabled_count, chosen_index)` decision pairs into a
/// schedule ID.
pub fn encode(digits: &[(u8, u8)]) -> String {
    let mut out = String::new();
    for &(n, idx) in digits {
        if n > 1 {
            out.push(DIGITS[idx as usize % 36] as char);
        }
    }
    if out.is_empty() {
        out.push('-');
    }
    out
}

/// Decodes a schedule ID back into chosen indices, in order.
///
/// Returns `Err` with the offending character on malformed input.
pub fn decode(id: &str) -> Result<Vec<u8>, char> {
    if id == "-" {
        return Ok(Vec::new());
    }
    id.chars()
        .map(|c| match c {
            '0'..='9' => Ok(c as u8 - b'0'),
            'a'..='z' => Ok(c as u8 - b'a' + 10),
            _ => Err(c),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_steps_are_skipped() {
        let id = encode(&[(1, 0), (3, 2), (1, 0), (2, 1), (4, 0)]);
        assert_eq!(id, "210");
        assert_eq!(decode(&id).unwrap(), vec![2, 1, 0]);
    }

    #[test]
    fn empty_schedule_round_trips() {
        let id = encode(&[(1, 0), (1, 0)]);
        assert_eq!(id, "-");
        assert_eq!(decode(&id).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn malformed_ids_are_rejected() {
        assert_eq!(decode("2!"), Err('!'));
    }
}
