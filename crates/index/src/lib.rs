//! Concept indexes for document ranking.
//!
//! Section 5.3 of the paper assumes "an index that allows us to traverse
//! the ontology efficiently (this would typically fit in memory) as well as
//! an inverted and a forward index that map concepts to documents and
//! vice-versa (memory or disk-based)". The prototype loads the latter two
//! from MySQL and reports I/O time separately. This crate supplies both
//! access paths:
//!
//! * [`InvertedIndex`] — concept → documents, CSR layout;
//! * [`ForwardIndex`] — document → concepts, CSR layout;
//! * [`IndexSource`] — the access trait the ranking algorithms program
//!   against, with [`MemorySource`] (both indexes resident) and
//!   [`FileSource`] (per-access `pread` against an on-disk image, the
//!   MySQL stand-in whose access time the harness reports as I/O time);
//! * [`Segment`] / [`SegmentedSource`] / [`SegmentedView`] — the dynamic
//!   path: immutable CSR segments plus a small memtable, sealed and
//!   compacted by a single writer and published to readers as lock-free
//!   `Arc`-shared snapshot views (see `DESIGN.md` §12);
//! * [`SnapshotStore`] — typed binary snapshots of any serde value using
//!   the workspace codec (`cbr_ontology::ser`); requires the `serde`
//!   cargo feature.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compress;
pub mod file;
pub mod forward;
pub mod inverted;
pub mod packing;
pub mod segment;
pub mod segmented;
pub mod snapshot;
pub mod source;
pub mod validate;

pub use compress::{CompressedPostings, CompressedSource};
pub use file::FileSource;
pub use forward::ForwardIndex;
pub use inverted::InvertedIndex;
pub use segment::Segment;
pub use segmented::{CompactionPolicy, SegmentedSource, SegmentedView};
#[cfg(feature = "serde")]
pub use snapshot::SnapshotStore;
pub use source::{IndexSource, MemorySource};
pub use validate::{validate_pair, IndexViolation};
