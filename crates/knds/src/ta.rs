//! Threshold Algorithm (TA) comparator for RDS queries.
//!
//! Section 4.1 sketches this baseline: precompute, for each concept, a
//! posting list of `(document, Ddc(d, c))` pairs sorted by ascending
//! distance, then run Fagin's TA over the query concepts' lists. The paper
//! rejects it because the `O(|D|·|C|)` precomputation is enormous, every
//! new document invalidates every list, and the bidirectional SDS distance
//! breaks the sorted-access model entirely. We implement it for RDS with
//! lists materialized lazily per query (one valid-path multi-source
//! distance pass per query concept), so the benches can quantify the
//! argument instead of taking it on faith.

use crate::engine::{QueryResult, RankedDoc};
use crate::metrics::QueryMetrics;
use crate::util::TopK;
use crate::workspace::KndsWorkspace;
use cbr_corpus::DocId;
use cbr_index::IndexSource;
use cbr_ontology::{distance::multi_source_distances, ConceptId, Ontology};
use std::time::Instant;

/// A distance-sorted posting list for one concept: every document paired
/// with `Ddc(d, c)`, ascending.
#[derive(Debug, Clone)]
pub struct DistancePostings {
    entries: Vec<(DocId, u32)>,
}

impl DistancePostings {
    /// Materializes the list for `concept`: one `O(V + E)` valid-path
    /// distance pass over the ontology, then a minimum per document over
    /// its concepts. This is the per-concept slice of the offline
    /// precomputation the paper deems infeasible at UMLS scale.
    pub fn materialize<S: IndexSource>(
        ontology: &Ontology,
        source: &S,
        concept: ConceptId,
    ) -> DistancePostings {
        let dist = multi_source_distances(ontology, &[concept]);
        let mut entries = Vec::with_capacity(source.num_docs());
        let mut buf: Vec<ConceptId> = Vec::new();
        for i in 0..source.num_docs() {
            let doc = DocId::from_index(i);
            buf.clear();
            source.doc_concepts(doc, &mut buf);
            let best = buf
                .iter()
                .map(|c| dist.get(c.index()).copied().unwrap_or(u32::MAX))
                .min()
                .unwrap_or(u32::MAX);
            // bound: sized — one entry per corpus document
            entries.push((doc, best));
        }
        entries.sort_unstable_by_key(|&(d, dist)| (dist, d));
        DistancePostings { entries }
    }

    /// Sequential (sorted) access: the `i`-th closest document.
    pub fn sorted_access(&self, i: usize) -> Option<(DocId, u32)> {
        self.entries.get(i).copied()
    }

    /// Number of entries (= collection size).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// TA evaluation of an RDS query.
///
/// Returns the exact top-k along with metrics; `metrics.distance_calc`
/// holds the list-materialization cost (the stand-in for the offline
/// precomputation) and `metrics.traversal` the TA round-robin itself.
pub fn rds<S: IndexSource>(
    ontology: &Ontology,
    source: &S,
    query: &[ConceptId],
    k: usize,
) -> QueryResult {
    let mut ws = KndsWorkspace::new();
    rds_with(ontology, source, &mut ws, query, k)
}

/// [`rds`] over a caller-owned workspace. TA's posting lists are
/// inherently per-query (one per query concept), but the normalized-query
/// buffer and the dense seen-document marks are reused.
pub fn rds_with<S: IndexSource>(
    ontology: &Ontology,
    source: &S,
    ws: &mut KndsWorkspace,
    query: &[ConceptId],
    k: usize,
) -> QueryResult {
    assert!(k > 0, "k must be positive");
    let reused = ws.begin();
    let mut q = std::mem::take(&mut ws.query);
    crate::util::normalize_query_into(query, &mut q);
    assert!(!q.is_empty(), "query must contain at least one concept");
    // TA only needs the per-document marks; the epoch bump replaces the
    // old O(|D|) clear-and-resize of a boolean vector.
    let rolled = ws.dense.begin_query(0, 0, source.num_docs(), false, false);

    let mut metrics = QueryMetrics { epoch_rollover: rolled as usize, ..QueryMetrics::default() };

    // "Offline" phase: one distance-sorted list per query concept, plus a
    // per-document random-access table.
    let t = Instant::now();
    let lists: Vec<DistancePostings> =
        q.iter().map(|&c| DistancePostings::materialize(ontology, source, c)).collect();
    let num_docs = source.num_docs();
    // Random access: doc -> per-list distance.
    let mut random: Vec<Vec<u32>> = Vec::with_capacity(q.len());
    for list in &lists {
        let mut table = vec![0u32; num_docs];
        for &(d, dist) in &list.entries {
            if let Some(slot) = table.get_mut(d.index()) {
                *slot = dist;
            }
        }
        // bound: sized — one random-access table per query concept
        random.push(table);
    }
    metrics.distance_calc += t.elapsed();

    // TA round-robin over sorted accesses.
    let t = Instant::now();
    let mut heap = TopK::new(k);
    let mut pos = 0usize;
    // cplx: bound d — one sorted round-robin position per turn, at most num_docs
    while pos < num_docs {
        // Threshold: sum of the distances at the current sorted positions.
        // Every list holds exactly `num_docs` entries and `pos < num_docs`,
        // so sorted access cannot miss; a miss just skips the list.
        let mut threshold = 0u64;
        for list in &lists {
            let Some((doc, dist)) = list.sorted_access(pos) else {
                continue;
            };
            threshold += dist as u64;
            if !ws.dense.mark_doc(doc) {
                continue;
            }
            metrics.docs_examined += 1;
            let total: u64 =
                random.iter().map(|r| r.get(doc.index()).map_or(u32::MAX, |&d| d) as u64).sum();
            // bound: proven — total sums nq u32 distances, far below 2^53
            heap.offer(doc, total as f64);
        }
        pos += 1;
        if heap.is_full() && threshold as f64 >= heap.threshold() {
            break;
        }
    }
    metrics.traversal += t.elapsed();
    metrics.candidates_seen = metrics.docs_examined;

    q.clear();
    ws.query = q;
    ws.finish();
    metrics.workspace_reused = reused as usize;
    metrics.workspace_bytes = ws.footprint_bytes();
    metrics.table_bytes = ws.dense.footprint_bytes();

    let results =
        heap.into_sorted().into_iter().map(|(doc, distance)| RankedDoc { doc, distance }).collect();
    QueryResult { results, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_corpus::Corpus;
    use cbr_index::MemorySource;
    use cbr_ontology::fixture;

    fn setup() -> (fixture::Figure3, MemorySource) {
        let fig = fixture::figure3();
        let c = |n: &str| fig.concept(n);
        let corpus = Corpus::from_concept_sets(vec![
            (vec![c("F"), c("R"), c("T"), c("V")], 0),
            (vec![c("I"), c("L"), c("U")], 0),
            (vec![c("M"), c("N")], 0),
            (vec![c("C")], 0),
        ]);
        let source = MemorySource::build(&corpus, fig.ontology.len());
        (fig, source)
    }

    #[test]
    fn distance_postings_are_sorted_and_correct() {
        let (fig, source) = setup();
        let u = fig.concept("U");
        let dp = DistancePostings::materialize(&fig.ontology, &source, u);
        assert_eq!(dp.len(), 4);
        // Doc 1 contains U itself -> distance 0; doc 0 contains R (parent) -> 1.
        assert_eq!(dp.sorted_access(0), Some((DocId(1), 0)));
        assert_eq!(dp.sorted_access(1), Some((DocId(0), 1)));
        let dists: Vec<u32> = (0..dp.len()).map(|i| dp.sorted_access(i).unwrap().1).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn ta_matches_full_scan() {
        let (fig, source) = setup();
        let q = fig.example_query();
        let ta = rds(&fig.ontology, &source, &q, 3);
        let scan = crate::baseline::rds(&fig.ontology, &source, &q, 3);
        assert_eq!(ta.results.len(), scan.results.len());
        for (a, b) in ta.results.iter().zip(scan.results.iter()) {
            assert_eq!(a.distance, b.distance);
        }
    }

    #[test]
    fn ta_early_terminates_on_easy_queries() {
        let (fig, source) = setup();
        // Query equal to doc 1: distance 0 is found at the first position.
        let r = rds(&fig.ontology, &source, &[fig.concept("U")], 1);
        assert_eq!(r.results[0].doc, DocId(1));
        assert!(
            r.metrics.docs_examined < source.num_docs(),
            "TA should stop before scanning everything"
        );
    }
}
