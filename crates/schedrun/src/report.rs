//! The aggregate schedule-exploration report, mirroring the shape of the
//! `cbr-audit` report so both tools slot into the same CI plumbing: a
//! `findings` array (non-empty means failure) plus a `passed` list, with
//! the same text and JSON layouts. The sched-specific extras are the
//! `schedule` field on each finding (a replayable ID for
//! `cbr-sched --replay`) and the exploration counters.

use sched::explore::Exploration;
use std::fmt::Write as _;

/// One concurrency finding, flattened for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (`S01`..`S08`).
    pub rule: String,
    /// The harness the finding came from (the report's "file" column).
    pub harness: String,
    /// Human-readable description.
    pub message: String,
    /// Replayable schedule ID, or `-` for cross-schedule findings.
    pub schedule: String,
}

/// The aggregate result of exploring every harness.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings across all harnesses; non-empty means failure.
    pub findings: Vec<Finding>,
    /// Per-harness "ran clean" lines for the human summary.
    pub passed: Vec<String>,
    /// Distinct complete schedules executed across all harnesses.
    pub schedules: usize,
    /// Total executions, including pruned partial runs.
    pub runs: usize,
}

impl Report {
    /// Whether every harness ran clean.
    pub fn ok(&self) -> bool {
        self.findings.is_empty()
    }

    /// Folds one harness's exploration into the report.
    pub fn absorb(&mut self, harness: &str, about: &str, ex: &Exploration) {
        self.schedules += ex.schedules;
        self.runs += ex.runs;
        for f in &ex.findings {
            self.findings.push(Finding {
                rule: f.kind.rule().to_string(),
                harness: harness.to_string(),
                message: f.message.clone(),
                schedule: f.schedule.clone(),
            });
        }
        if ex.findings.is_empty() {
            let how = if ex.complete { "exhausted" } else { "sampled" };
            self.passed.push(format!(
                "sched {harness} ({about}; {} schedules {how}, {} runs)",
                ex.schedules, ex.runs
            ));
        }
    }

    /// Renders the human-readable summary (same layout as `cbr-audit`).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for p in &self.passed {
            let _ = writeln!(out, "ok   {p}");
        }
        for f in &self.findings {
            let _ = writeln!(
                out,
                "FAIL [{}] {}: {} (schedule {})",
                f.rule, f.harness, f.message, f.schedule
            );
        }
        let _ = writeln!(
            out,
            "sched: {} harness(es) passed, {} finding(s), {} distinct schedules in {} runs",
            self.passed.len(),
            self.findings.len(),
            self.schedules,
            self.runs
        );
        out
    }

    /// Renders the report as a JSON object with the same keys as the
    /// `cbr-audit` report (`ok`/`passed`/`findings` with
    /// `rule`/`file`/`line`/`message`), plus `schedule` per finding and
    /// the exploration counters.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"ok\": ");
        out.push_str(if self.ok() { "true" } else { "false" });
        let _ = write!(out, ",\n  \"schedules\": {},\n  \"runs\": {}", self.schedules, self.runs);
        out.push_str(",\n  \"passed\": [");
        for (i, p) in self.passed.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            push_json_str(&mut out, p);
        }
        out.push_str("],\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            out.push_str("{\"rule\": ");
            push_json_str(&mut out, &f.rule);
            out.push_str(", \"file\": ");
            push_json_str(&mut out, &f.harness);
            out.push_str(", \"line\": 0, \"message\": ");
            push_json_str(&mut out, &f.message);
            out.push_str(", \"schedule\": ");
            push_json_str(&mut out, &f.schedule);
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_mirrors_the_audit_shape() {
        let mut r = Report::default();
        r.passed.push("sched pool-stress (clean)".to_string());
        r.findings.push(Finding {
            rule: "S05".to_string(),
            harness: "seeded-unlock-race".to_string(),
            message: "lost \"update\"".to_string(),
            schedule: "1a".to_string(),
        });
        r.schedules = 42;
        r.runs = 50;
        let json = r.render_json();
        assert!(json.contains("\"ok\": false"));
        assert!(json.contains("\"schedules\": 42"));
        assert!(json.contains("\"rule\": \"S05\""));
        assert!(json.contains("\"file\": \"seeded-unlock-race\""));
        assert!(json.contains("\"line\": 0"));
        assert!(json.contains("\\\"update\\\""));
        assert!(json.contains("\"schedule\": \"1a\""));
    }

    #[test]
    fn empty_report_is_ok() {
        let r = Report::default();
        assert!(r.ok());
        assert!(r.render_json().contains("\"ok\": true"));
    }
}
