//! Fast, non-cryptographic hashing for integer-keyed hot maps.
//!
//! The ranking algorithms keep many small maps keyed by [`ConceptId`] or
//! document ids on their hot paths (the `Md`/`M'd` coverage maps of
//! Section 5, the D-Radix node table of Section 4). The standard library's
//! SipHash is needlessly slow for such keys, so this module provides an
//! `FxHash`-style multiplicative hasher (the algorithm used inside rustc).
//! HashDoS resistance is irrelevant here: keys are internally generated.
//!
//! [`ConceptId`]: crate::ConceptId

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Firefox/rustc `FxHasher` (a truncated golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast multiplicative hasher suitable for small integer-like keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8-byte words, then the tail. Hot keys (u32/u64) take the
        // dedicated integer paths below instead.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConceptId;
    use std::hash::{BuildHasher, BuildHasherDefault};

    fn hash_of<T: std::hash::Hash>(v: &T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn is_deterministic() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&ConceptId(7)), hash_of(&ConceptId(7)));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        // 9 bytes: one full word plus a 1-byte tail.
        assert_ne!(hash_of(&[0u8; 9].as_slice()), hash_of(&[1u8; 9].as_slice()));
        let mut a = [7u8; 9];
        let mut b = [7u8; 9];
        a[8] = 1;
        b[8] = 2;
        assert_ne!(hash_of(&a.as_slice()), hash_of(&b.as_slice()));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<ConceptId, u32> = FxHashMap::default();
        m.insert(ConceptId(1), 10);
        m.insert(ConceptId(2), 20);
        assert_eq!(m[&ConceptId(1)], 10);

        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(5);
        assert!(s.contains(&5));
        assert!(!s.contains(&6));
    }
}
