//! Seeded-violation fixture: weighted scoring packs epoch stamps by
//! hand instead of going through the checked packing helpers.

/// Weighted traversal state for the current build epoch.
pub struct Weighted {
    epoch: u32,
}

impl Weighted {
    /// RDS entry point; seeded B02: hand-rolled stamp/slot packing.
    pub fn rds_with(&self, slot: u32) -> u64 {
        let stamp = self.epoch as u64;
        stamp << 32 | slot as u64
    }

    /// SDS entry point; the set-bit idiom with a literal LHS is exempt.
    pub fn sds_with(&self, bit: u32) -> u64 {
        1u64 << (bit & 63)
    }
}
