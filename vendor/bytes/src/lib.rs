//! Offline subset of the `bytes` crate.
//!
//! Implements just the `BytesMut` / `BufMut` surface the workspace uses
//! (little-endian appends over a growable buffer). The sandbox has no
//! registry access; drop the `[patch.crates-io]` entry to use the real
//! crate instead.

use std::ops::{Deref, DerefMut};

/// A growable byte buffer, API-compatible with the subset of
/// `bytes::BytesMut` this workspace uses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

/// Append-oriented writer trait (subset of `bytes::BufMut`).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_appends() {
        let mut b = BytesMut::with_capacity(16);
        b.put_slice(b"hi");
        b.put_u32_le(0x0102_0304);
        b.put_u64_le(1);
        assert_eq!(&b[..2], b"hi");
        assert_eq!(&b[2..6], &[4, 3, 2, 1]);
        assert_eq!(b.len(), 14);
    }
}
