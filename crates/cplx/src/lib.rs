//! `cbr-cplx`: whole-program static symbolic loop-bound and complexity
//! analysis proving the paper's asymptotic claims on the hot path.
//!
//! The paper's efficiency argument is differential: the D-Radix DAG
//! distance path does `O((|Pq|+|Pd|)·log)` work per pair while the TA
//! baseline materializes `O(nq·|D|)` — and nothing on the query path is
//! allowed corpus-pairwise (`|D|²`, `|C|·|D|`) work. Those are claims a
//! benchmark samples but never *proves*. This crate is the static
//! complement: it reuses `cbr-flow`'s scanner, item parser, and call
//! graph as a library, extracts per-function [`summary`] loop nests
//! with iteration drivers mapped through a lexical environment to
//! symbolic parameters (`|C|`, `|D|`, `|Pq|`, `k`, `segments`, …;
//! declared via `// cplx: bound <expr> <why>` where inference fails),
//! composes function bounds bottom-up over the call graph, and checks
//! the [`rules`] over everything reachable from the eight hot roots:
//!
//! * **C01** — every reachable loop has a symbolic bound;
//! * **C02** — no `|D|²` / `|C|·|D|` loop-nest product on the query path;
//! * **C03** — the D-Radix path composes to a recognizable
//!   `O((|Pq|+|Pd|)·log)` while the TA baseline is the *only* root with
//!   the pairwise `nq·D` shape (the differential claim);
//! * **C04** — `bound: sized` table capacities dominate the loop nests
//!   filling them (cross-linking `cbr-bound`'s B03 directives);
//! * **C05** — `cplx: counter` markers and `counters::bump_*` hooks
//!   stay in sync, so the dynamic cross-validation harness
//!   (`tests/counters.rs`, behind the `counters` feature of `cbr-knds`)
//!   measures exactly the loops the static model bounds.
//!
//! Findings ratchet through `cplx.allow` (same exact-count grammar as
//! `flow.allow`); the seeded fixture tree under `crates/cplx/fixtures`
//! proves every rule can fire.
//!
//! ```sh
//! cargo run -p cbr-cplx                          # analyze the workspace
//! cargo run -p cbr-cplx -- --json                # machine-readable report
//! cargo run -p cbr-cplx -- --fixtures --expect-findings  # prove non-vacuity
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rules;
pub mod summary;
pub mod sym;

pub use cbr_flow::allowlist;
use cbr_flow::graph::{CrateDeps, Graph};
use cbr_flow::parser::Workspace;
use cbr_flow::report::Report;
use cbr_flow::scanner::SourceFile;
use cbr_flow::ParsedWorkspace;
use std::path::Path;

/// Analysis statistics: graph size plus the complexity-proof stats.
#[derive(Debug)]
pub struct CplxStats {
    /// Functions with bodies in the parsed workspace.
    pub functions: usize,
    /// Call-graph edges the propagation ran over.
    pub edges: usize,
    /// The C01/C03/C05 proof statistics.
    pub proof: rules::RuleStats,
}

/// Findings (allowlist applied) plus analysis statistics.
#[derive(Debug)]
pub struct CplxReport {
    /// Findings and passed-rule lines.
    pub report: Report,
    /// Graph size and the complexity-proof statistics.
    pub stats: CplxStats,
}

impl CplxReport {
    /// Human-readable report with the proof summary lines.
    pub fn render_text(&self) -> String {
        let p = &self.stats.proof;
        format!(
            "{}cplx: {} fns, {} edges; {} roots, {} reachable fns, {} reachable loops \
             ({} unbounded, {} counter-marked)\n\
             cplx C03: dradix {} (recognized O(P·log): {}), ta {}, {} quadratic root(s)\n",
            self.report.render_text(),
            self.stats.functions,
            self.stats.edges,
            p.roots,
            p.reachable_fns,
            p.reachable_loops,
            p.unbounded_loops,
            p.c05_counters,
            p.c03_dradix_path,
            p.c03_dradix_recognized,
            p.c03_ta_path,
            p.c03_quadratic_roots,
        )
    }

    /// JSON report: the shared [`Report`] shape plus the proof stats. A
    /// clean run is only meaningful together with non-vacuous stats —
    /// `"reachable_loops"` must be nonzero, `"c03_dradix_recognized"`
    /// must be `true`, and `"c03_quadratic_roots"` must be exactly 1
    /// (the TA baseline) for the differential claim to hold.
    pub fn render_json(&self) -> String {
        let p = &self.stats.proof;
        let base = self.report.render_json();
        let trimmed = base.trim_end().trim_end_matches('}').trim_end().trim_end_matches(',');
        format!(
            "{trimmed},\n  \"functions\": {},\n  \"edges\": {},\n  \"roots\": {},\n  \
             \"reachable_fns\": {},\n  \"reachable_loops\": {},\n  \"unbounded_loops\": {},\n  \
             \"c03_dradix_path\": \"{}\",\n  \"c03_dradix_recognized\": {},\n  \
             \"c03_ta_path\": \"{}\",\n  \"c03_quadratic_roots\": {},\n  \
             \"c05_counters\": {}\n}}\n",
            self.stats.functions,
            self.stats.edges,
            p.roots,
            p.reachable_fns,
            p.reachable_loops,
            p.unbounded_loops,
            p.c03_dradix_path,
            p.c03_dradix_recognized,
            p.c03_ta_path,
            p.c03_quadratic_roots,
            p.c05_counters,
        )
    }
}

/// Analyzes scanned sources with an allowlist under a crate-dependency
/// constraint (the graph resolves calls through it; the loop summaries
/// themselves are scope-free).
pub fn analyze(files: Vec<SourceFile>, allow: &str, origin: &str, deps: &CrateDeps) -> CplxReport {
    let ws = Workspace::parse(files);
    let graph = Graph::build(&ws, deps);
    let pw = ParsedWorkspace { ws, deps: deps.clone(), graph };
    analyze_parsed(&pw, allow, origin)
}

/// [`analyze`] over an already-parsed workspace (the parse-once path).
pub fn analyze_parsed(pw: &ParsedWorkspace, allow: &str, origin: &str) -> CplxReport {
    let (ws, graph) = (&pw.ws, &pw.graph);
    let sm = summary::extract(ws);
    let (findings, proof) = rules::run(ws, graph, &sm);
    let findings = allowlist::ratchet(findings, allow, origin);

    let mut report = Report { findings, passed: Vec::new() };
    if report.ok() {
        for rule in ["C01", "C02", "C03", "C04", "C05"] {
            report.passed.push(format!(
                "cplx {rule} ({} loops, {} roots, {} reachable)",
                proof.reachable_loops, proof.roots, proof.reachable_fns
            ));
        }
    }
    CplxReport {
        report,
        stats: CplxStats { functions: graph.stats.functions, edges: graph.stats.edges, proof },
    }
}

/// Runs the complexity analysis over the real workspace with `cplx.allow`.
pub fn run_workspace(root: &Path) -> CplxReport {
    run_parsed(root, &ParsedWorkspace::load(root))
}

/// [`run_workspace`] over a shared [`ParsedWorkspace`].
pub fn run_parsed(root: &Path, pw: &ParsedWorkspace) -> CplxReport {
    let allow = allowlist::load(root, "cplx.allow");
    analyze_parsed(pw, &allow, "cplx.allow")
}

/// Runs the complexity analysis over the seeded-violation fixture tree
/// (no allowlist — every seeded finding must surface — and no
/// dependency constraint, since the fixture tree has no manifests).
pub fn run_fixtures(root: &Path) -> CplxReport {
    analyze(
        cbr_flow::collect_sources(&root.join("crates/cplx/fixtures")),
        "",
        "cplx.allow",
        &CrateDeps::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_flow::workspace_root;

    /// The complexity lint must be silent on its own tree modulo
    /// `cplx.allow`.
    #[test]
    fn current_tree_is_clean() {
        let cr = run_workspace(&workspace_root());
        assert!(cr.report.ok(), "cplx findings on the current tree:\n{}", cr.render_text());
    }

    /// The acceptance gate: the differential claim is proven, not
    /// vacuously passed — every root spec matched, the reachable slice
    /// has loops, the D-Radix path composes to a recognizable
    /// `O(P·log)`, and the TA baseline is the only quadratic root.
    #[test]
    fn c03_proves_the_differential_claim() {
        let cr = run_workspace(&workspace_root());
        let p = &cr.stats.proof;
        assert_eq!(
            p.roots,
            rules::ROOT_SPECS.len(),
            "every hot-path root spec must match:\n{}",
            cr.render_text()
        );
        assert!(
            p.reachable_loops >= 20,
            "the proof must cover the kNDS + D-Radix loops, got {}",
            p.reachable_loops
        );
        assert_eq!(p.unbounded_loops, 0, "every reachable loop is bounded:\n{}", cr.render_text());
        assert!(
            p.c03_dradix_recognized,
            "the D-Radix path must be recognizably O(P·log), got {}",
            p.c03_dradix_path
        );
        assert_eq!(
            p.c03_quadratic_roots, 1,
            "exactly the TA baseline carries nq·D (dradix {}, ta {})",
            p.c03_dradix_path, p.c03_ta_path
        );
        assert!(
            p.c05_counters >= 4,
            "the counter harness must cover the kNDS + D-Radix hot loops, got {}",
            p.c05_counters
        );
    }

    /// The seeded fixture tree fires every rule with exact counts — the
    /// non-vacuity proof `--expect-findings` builds on, pinned tighter
    /// here so a rule silently losing a case regresses loudly.
    #[test]
    fn fixtures_fire_every_rule_with_exact_counts() {
        let cr = run_fixtures(&workspace_root());
        let count = |rule: &str| cr.report.findings.iter().filter(|f| f.rule == rule).count();
        assert_eq!(
            count("C01"),
            3,
            "bare while + bad expr + bare directive:\n{}",
            cr.render_text()
        );
        assert_eq!(
            count("C02"),
            2,
            "lexical D·D nest + cross-fn C·D product:\n{}",
            cr.render_text()
        );
        assert_eq!(
            count("C03"),
            2,
            "unrecognized dradix + quadratic non-TA root:\n{}",
            cr.render_text()
        );
        assert_eq!(count("C04"), 2, "untyped capacity + outgrown capacity:\n{}", cr.render_text());
        assert_eq!(
            count("C05"),
            2,
            "marker without bump + bump without marker:\n{}",
            cr.render_text()
        );
        assert_eq!(
            count("CPLX"),
            0,
            "fixture roots keep the meta-rule quiet:\n{}",
            cr.render_text()
        );
    }

    #[test]
    fn json_report_carries_the_proof_stats() {
        let cr = run_workspace(&workspace_root());
        let json = cr.render_json();
        for key in [
            "\"ok\"",
            "\"reachable_loops\"",
            "\"c03_dradix_path\"",
            "\"c03_dradix_recognized\"",
            "\"c03_quadratic_roots\"",
            "\"c05_counters\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
    }
}
