//! Seeded-violation fixture for cbr-flow. Parsed, never compiled.
//!
//! `search_with` matches the `knds::weighted::*_with` suffix root spec.
//! It seeds one F04; the workspace-fed helper proves the F01 exemption
//! (its allocation must NOT be reported).

pub struct Buckets {
    pub buckets: Vec<Vec<u32>>,
}

pub fn search_with(ws: &mut Buckets, q: &[u32]) -> u32 {
    grow(ws, q.len());
    let head = ws.buckets[0].len() as u32; // seeded: F04
    head
}

// Bucket growth is retained by the caller's workspace.
// flow: workspace-fed
fn grow(ws: &mut Buckets, upto: usize) {
    while ws.buckets.len() <= upto {
        ws.buckets.push(Vec::new()); // exempt: workspace-fed callee
    }
}
