//! `cbr-flow` CLI: run the call-graph dataflow lints.
//!
//! ```sh
//! cbr-flow                           # lint the real workspace (flow.allow applied)
//! cbr-flow --json                    # machine-readable report with graph stats
//! cbr-flow --fixtures                # lint the seeded-violation fixture tree
//! cbr-flow --fixtures --expect-findings  # assert every rule F01-F05 fires
//! ```
//!
//! Exit codes: `0` clean (or, with `--expect-findings`, all rules
//! fired), `1` findings (or a missing rule), `2` usage error.

#![forbid(unsafe_code)]

use cbr_flow::{run_fixtures, run_workspace, workspace_root};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cbr-flow [--json] [--fixtures] [--expect-findings]\n\n\
         options:\n  \
         --json             emit the machine-readable report\n  \
         --fixtures         analyze the seeded-violation fixture tree instead of the workspace\n  \
         --expect-findings  fail unless every rule F01-F05 produced at least one finding"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut json = false;
    let mut fixtures = false;
    let mut expect_findings = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--fixtures" => fixtures = true,
            "--expect-findings" => expect_findings = true,
            "--help" | "-h" => {
                let _ = usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let root = workspace_root();
    let fr = if fixtures { run_fixtures(&root) } else { run_workspace(&root) };

    if json {
        print!("{}", fr.render_json());
    } else {
        print!("{}", fr.render_text());
    }

    if expect_findings {
        let missing: Vec<&str> = ["F01", "F02", "F03", "F04", "F05"]
            .into_iter()
            .filter(|rule| !fr.report.findings.iter().any(|f| f.rule == *rule))
            .collect();
        if missing.is_empty() {
            eprintln!("expect-findings: all rules F01-F05 fired");
            ExitCode::SUCCESS
        } else {
            eprintln!("expect-findings: rule(s) {} produced no findings", missing.join(", "));
            ExitCode::FAILURE
        }
    } else if fr.report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
