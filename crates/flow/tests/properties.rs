//! Parser stability: injecting comments and blank lines anywhere in a
//! source file must not change what the item parser sees — the same
//! functions, the same signatures, the same call sites in the same
//! order.

use cbr_flow::parser::Workspace;
use cbr_flow::scanner::SourceFile;
use proptest::prelude::*;

const BASE: &str = r#"
pub struct Engine {
    pool: Pool,
}

impl Engine {
    pub fn rds_with(&self, ws: &mut Ws, q: &[u32], k: usize) -> Vec<u32> {
        let scored = q.iter().map(|&c| self.score(ws, c)).collect::<Vec<u32>>();
        let best = scored.iter().copied().max().unwrap_or(k as u32);
        crate::util::emit(best);
        vec![best]
    }

    fn score(&self, ws: &mut Ws, c: u32) -> u32 {
        ws.scratch.push(c);
        self.pool.len() as u32 + c
    }

    pub fn save(&self, path: &str) -> Result<(), Error> {
        std::fs::write(path, format!("{}", self.pool.len()))?;
        Ok(())
    }
}

#[cfg(feature = "serde")]
pub fn export(e: &Engine) -> String {
    serde_json::to_string(e).unwrap_or_default()
}

pub fn drive(e: &Engine, ws: &mut Ws) -> u32 {
    let out = e.rds_with(ws, &[1, 2, 3], 2);
    out.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn drives() {
        let n = super::drive(&make(), &mut ws());
        assert_eq!(n, 3);
    }
}
"#;

/// (name, method, receiver) for every call site in a fn.
type CallSummary = Vec<(String, bool, String)>;

/// Everything the dataflow rules consume from a parsed fn.
fn summarize(src: &str) -> Vec<(String, bool, bool, bool, CallSummary)> {
    let ws = Workspace::parse(vec![SourceFile::parse("crates/knds/src/engine.rs", src)]);
    ws.fns
        .iter()
        .map(|f| {
            (
                f.name.clone(),
                f.is_pub,
                f.is_test,
                f.returns_result,
                f.calls.iter().map(|c| (c.name.clone(), c.method, c.receiver.clone())).collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parse_is_stable_under_comment_and_whitespace_injection(
        modes in prop::collection::vec(0u8..4, BASE.lines().count()..BASE.lines().count() + 1),
        junk in prop::collection::vec("[a-z ]{0,16}", BASE.lines().count()..BASE.lines().count() + 1),
    ) {
        let clean = summarize(BASE);
        let mut mutated = String::new();
        for (i, line) in BASE.lines().enumerate() {
            match modes[i] {
                1 => {
                    mutated.push_str("// ");
                    mutated.push_str(&junk[i]);
                    mutated.push('\n');
                }
                2 => mutated.push('\n'),
                _ => {}
            }
            mutated.push_str(line);
            if modes[i] == 3 {
                mutated.push_str("  // ");
                mutated.push_str(&junk[i]);
            }
            mutated.push('\n');
        }
        let injected = summarize(&mutated);
        prop_assert_eq!(clean, injected);
    }
}
