//! The BL baseline: per-pair minimum concept distances (Section 4.1/6.2).
//!
//! "We compared two methods that do not require index maintenance, i.e.,
//! DRC against a baseline that calculates the document to document
//! distances at the query time by computing the respective minimum concept
//! distances." For `nd` document and `nq` query concepts this performs
//! `O(nd · nq)` pairwise distance computations — the quadratic curve of
//! Figure 6 — each itself minimizing over the concepts' Dewey address
//! pairs. These functions double as the test oracle for DRC.

use cbr_ontology::{concept_distance, ConceptId, Ontology, PathTable};

/// `Ddc(d, c)` by brute force (Equation 1).
pub fn document_concept_distance(paths: &PathTable, doc: &[ConceptId], c: ConceptId) -> u32 {
    doc.iter().map(|&dc| concept_distance(paths, dc, c)).min().unwrap_or(u32::MAX)
}

/// `Ddq(d, q)` by brute force (Equation 2). Mirrors
/// [`Drc::document_query_distance`](crate::Drc::document_query_distance).
pub fn document_query_distance(ont: &Ontology, doc: &[ConceptId], query: &[ConceptId]) -> u64 {
    assert!(!query.is_empty(), "RDS distance requires a non-empty query");
    if doc.is_empty() {
        return crate::INFINITE;
    }
    let paths = ont.path_table();
    query.iter().map(|&qi| document_concept_distance(paths, doc, qi) as u64).sum()
}

/// `Ddd(d1, d2)` by brute force (Equation 3).
pub fn document_document_distance(ont: &Ontology, d1: &[ConceptId], d2: &[ConceptId]) -> f64 {
    if d1.is_empty() || d2.is_empty() {
        return f64::INFINITY;
    }
    let paths = ont.path_table();
    let sum1: u64 = d1.iter().map(|&c| document_concept_distance(paths, d2, c) as u64).sum();
    let sum2: u64 = d2.iter().map(|&c| document_concept_distance(paths, d1, c) as u64).sum();
    sum1 as f64 / d1.len() as f64 + sum2 as f64 / d2.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Drc;
    use cbr_ontology::{fixture, GeneratorConfig, OntologyGenerator};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_paper_example() {
        let fig = fixture::figure3();
        let d = fig.example_document();
        let q = fig.example_query();
        assert_eq!(document_query_distance(&fig.ontology, &d, &q), 7);
    }

    #[test]
    fn drc_equals_brute_force_on_figure3_pairs() {
        let fig = fixture::figure3();
        let mut drc = Drc::new(&fig.ontology);
        let sets: Vec<Vec<ConceptId>> = vec![
            fig.example_document(),
            fig.example_query(),
            vec![fig.concept("M"), fig.concept("N")],
            vec![fig.concept("C")],
            vec![fig.concept("A")],
            vec![fig.concept("V"), fig.concept("T"), fig.concept("C"), fig.concept("M")],
        ];
        for a in &sets {
            for b in &sets {
                assert_eq!(
                    drc.document_query_distance(a, b),
                    document_query_distance(&fig.ontology, a, b),
                    "Ddq mismatch for {a:?} vs {b:?}"
                );
                let x = drc.document_document_distance(a, b);
                let y = document_document_distance(&fig.ontology, a, b);
                assert!((x - y).abs() < 1e-9, "Ddd mismatch for {a:?} vs {b:?}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn drc_equals_brute_force_on_random_ontologies() {
        // The load-bearing equivalence test: random DAGs, random concept
        // sets, exact agreement required.
        for seed in 0..5u64 {
            let ont = OntologyGenerator::new(GeneratorConfig::small(150).with_seed(1000 + seed))
                .generate();
            let mut drc = Drc::new(&ont);
            let mut rng = StdRng::seed_from_u64(seed);
            let all: Vec<ConceptId> = ont.concepts().collect();
            for _ in 0..10 {
                let pick = |rng: &mut StdRng, n: usize| -> Vec<ConceptId> {
                    let mut v: Vec<ConceptId> =
                        (0..n).map(|_| all[rng.random_range(0..all.len())]).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                };
                let d = pick(&mut rng, 8);
                let q = pick(&mut rng, 4);
                assert_eq!(
                    drc.document_query_distance(&d, &q),
                    document_query_distance(&ont, &d, &q),
                    "seed {seed}: Ddq mismatch d={d:?} q={q:?}"
                );
                let x = drc.document_document_distance(&d, &q);
                let y = document_document_distance(&ont, &d, &q);
                assert!(
                    (x - y).abs() < 1e-9,
                    "seed {seed}: Ddd mismatch d={d:?} q={q:?}: {x} vs {y}"
                );
            }
        }
    }
}
