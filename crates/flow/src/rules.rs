//! The call-graph dataflow rules F01–F05.
//!
//! * **F01** — no allocation reachable from the hot-path roots
//!   (`knds::engine::{rds_with,sds_with}`, `knds::ta::rds_with`,
//!   `knds::weighted::*_with`, `dradix::dag::build_into`) on the
//!   release graph, unless the callee is marked `// flow:
//!   workspace-fed` (its allocations grow caller-owned scratch).
//! * **F02** — a function that pops a workspace from a pool must push
//!   it back (or hand it to a drop guard) on every early exit.
//! * **F03** — no discarded `Result` (`let _ =` or a bare statement)
//!   from a fallible workspace-crate call.
//! * **F04** — no panic source (`panic!`, `unwrap`, `expect`, slice
//!   indexing) transitively reachable from the hot-path roots on the
//!   release graph. `assert!`/`debug_assert!` are intentionally out of
//!   scope, consistent with audit A02.
//! * **F05** — `pub` workspace functions unreachable from every root
//!   (hot paths, `main`s, tests, benches, examples) and textually
//!   unreferenced anywhere are dead exports.
//!
//! A meta-rule `FLOW` fires when a hot-path root spec matches no
//! function, so renames cannot silently turn F01/F04 vacuous.

use crate::graph::{propagate, Graph, Reach};
use crate::parser::{Discard, Workspace};
use crate::report::Finding;
use crate::scanner::{is_ident_byte, slice_index_sites, SourceFile};

/// Hot-path root specs: `(module, name pattern)`. A leading `*` in the
/// pattern matches any name with that suffix.
const HOT_ROOTS: [(&str, &str); 5] = [
    ("knds::engine", "rds_with"),
    ("knds::engine", "sds_with"),
    ("knds::ta", "rds_with"),
    ("knds::weighted", "*_with"),
    ("dradix::dag", "build_into"),
];

/// Allocation needles for F01. Idents are matched with a word
/// boundary on the left so `SmallVec::new(` or `grow_with_capacity(`
/// do not trip the rule.
const ALLOC_NEEDLES: [&str; 12] = [
    "Vec::new(",
    "vec!",
    "Box::new(",
    ".collect(",
    ".collect::<",
    "String::from(",
    "String::new(",
    ".to_vec(",
    "with_capacity(",
    ".to_string(",
    ".to_owned(",
    "format!",
];

/// Panic-source needles for F04 (slice indexing is handled separately
/// via [`slice_index_sites`]).
const PANIC_NEEDLES: [&str; 6] =
    ["panic!", "unreachable!", "todo!", "unimplemented!", ".unwrap(", ".expect("];

/// Runs all rules over the parsed workspace and its call graph.
pub fn run(ws: &Workspace, graph: &Graph) -> Vec<Finding> {
    let mut out = Vec::new();
    let roots = hot_roots(ws, &mut out);
    let hot = propagate(&graph.release_edges, &roots);
    f01_no_hot_allocation(ws, &hot, &mut out);
    f02_pool_discipline(ws, &mut out);
    f03_discarded_result(ws, graph, &mut out);
    f04_no_hot_panic(ws, &hot, &mut out);
    f05_dead_pub_fns(ws, graph, &roots, &mut out);
    out
}

/// Resolves the hot-path root specs to fn ids, emitting a `FLOW`
/// meta-finding for any spec that no longer matches anything.
fn hot_roots(ws: &Workspace, out: &mut Vec<Finding>) -> Vec<usize> {
    let mut roots = Vec::new();
    for (module, pat) in HOT_ROOTS {
        let mut found = false;
        for (id, f) in ws.fns.iter().enumerate() {
            if f.is_test || f.module != module {
                continue;
            }
            let hit = match pat.strip_prefix('*') {
                Some(suffix) => f.name.ends_with(suffix),
                None => f.name == pat,
            };
            if hit {
                roots.push(id);
                found = true;
            }
        }
        if !found {
            out.push(Finding::new(
                "FLOW",
                "crates/flow/src/rules.rs",
                0,
                format!("hot-path root spec `{module}::{pat}` matched no function — roots drifted"),
            ));
        }
    }
    roots
}

/// Innermost function owning byte offset `at` in file `file`.
fn owner_of(ws: &Workspace, file: usize, at: usize) -> Option<usize> {
    ws.fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.file == file && f.body.0 < at && at < f.body.1)
        .min_by_key(|(_, f)| f.body.1 - f.body.0)
        .map(|(id, _)| id)
}

/// Scans `file.code` within `span` for `needles`, honoring a left word
/// boundary for ident-leading needles. Yields `(offset, needle)`.
fn needle_sites(
    file: &SourceFile,
    span: (usize, usize),
    needles: &[&'static str],
) -> Vec<(usize, &'static str)> {
    let code = &file.code;
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for &needle in needles {
        let region = &code[span.0..=span.1];
        let mut from = 0;
        while let Some(rel) = region[from..].find(needle) {
            let at = span.0 + from + rel;
            from += rel + 1;
            if needle.as_bytes()[0].is_ascii_alphabetic() && at > 0 && is_ident_byte(bytes[at - 1])
            {
                continue;
            }
            out.push((at, needle));
        }
    }
    out.sort_unstable();
    out
}

/// What a hot-path scan looks for and how it reports it.
#[derive(Clone, Copy)]
struct HotScan {
    rule: &'static str,
    what: &'static str,
    needles: &'static [&'static str],
    exempt_workspace_fed: bool,
}

/// Shared body of F01/F04: scan every hot-reachable, non-exempt fn for
/// the scan's needles (plus `extra` offsets) outside test/debug-gated
/// regions.
fn hot_scan(
    ws: &Workspace,
    hot: &Reach,
    scan: &HotScan,
    extra: impl Fn(&SourceFile) -> Vec<usize>,
    out: &mut Vec<Finding>,
) {
    let HotScan { rule, what, needles, exempt_workspace_fed } = *scan;
    for (id, f) in ws.fns.iter().enumerate() {
        if !hot.reached(id) || f.is_test || (exempt_workspace_fed && f.workspace_fed) {
            continue;
        }
        let file = &ws.files[f.file];
        let mut sites = needle_sites(file, f.body, needles);
        for at in extra(file) {
            if f.body.0 < at && at < f.body.1 {
                sites.push((at, "slice indexing `[..]`"));
            }
        }
        sites.sort_unstable();
        for (at, needle) in sites {
            if file.is_test(at) || file.is_debug_gated(at) || owner_of(ws, f.file, at) != Some(id) {
                continue;
            }
            let label = needle.trim_end_matches('(');
            out.push(Finding::new(
                rule,
                &file.rel,
                file.line_of(at),
                format!("{what} `{label}` on the hot path: {}", hot.chain(ws, id)),
            ));
        }
    }
}

/// F01: no allocation reachable from the hot-path roots.
fn f01_no_hot_allocation(ws: &Workspace, hot: &Reach, out: &mut Vec<Finding>) {
    let scan = HotScan {
        rule: "F01",
        what: "allocation",
        needles: &ALLOC_NEEDLES,
        exempt_workspace_fed: true,
    };
    hot_scan(ws, hot, &scan, |_| Vec::new(), out);
}

/// F04: no panic source reachable from the hot-path roots.
fn f04_no_hot_panic(ws: &Workspace, hot: &Reach, out: &mut Vec<Finding>) {
    let scan = HotScan {
        rule: "F04",
        what: "panic source",
        needles: &PANIC_NEEDLES,
        exempt_workspace_fed: false,
    };
    hot_scan(ws, hot, &scan, slice_index_sites, out);
}

/// F02: pop/push balance on workspace pools across early exits.
fn f02_pool_discipline(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.fns {
        let file = &ws.files[f.file];
        let code = &file.code;
        let bytes = code.as_bytes();
        for (ci, pop) in f.calls.iter().enumerate() {
            if !pop.method || pop.name != "pop" || !pop.receiver.to_lowercase().contains("pool") {
                continue;
            }
            if file.is_test(pop.at) {
                continue;
            }
            // The pop statement itself: handing the workspace to a drop
            // guard (`WsGuard::new(pool.pop())`) satisfies the rule.
            let stmt_end = code[pop.close..].find(';').map_or(f.body.1, |p| pop.close + p);
            let stmt_from = code[..pop.at].rfind(['{', ';']).map_or(0, |p| p + 1);
            if code[stmt_from..stmt_end].contains("uard") {
                continue;
            }
            let push = f
                .calls
                .iter()
                .skip(ci + 1)
                .find(|c| c.method && c.name == "push" && c.receiver == pop.receiver);
            let Some(push) = push else {
                out.push(Finding::new(
                    "F02",
                    &file.rel,
                    file.line_of(pop.at),
                    format!(
                        "workspace popped from `{}` in `{}` is never pushed back and no drop \
                         guard takes it",
                        pop.receiver, f.name
                    ),
                ));
                continue;
            };
            // Every early exit between the pop statement and the push
            // escapes with the workspace still checked out.
            let region = (stmt_end.min(push.at), push.at);
            let mut k = region.0;
            while k < region.1 {
                let b = bytes[k];
                if b == b'?' {
                    let mut n = k + 1;
                    while n < bytes.len() && bytes[n].is_ascii_whitespace() {
                        n += 1;
                    }
                    let mut e = n;
                    while e < bytes.len() && is_ident_byte(bytes[e]) {
                        e += 1;
                    }
                    if &code[n..e] != "Sized" && !file.is_test(k) {
                        out.push(Finding::new(
                            "F02",
                            &file.rel,
                            file.line_of(k),
                            format!(
                                "`?` between `{}.pop()` and `{}.push(..)` in `{}` leaks the \
                                 popped workspace on the error path",
                                pop.receiver, pop.receiver, f.name
                            ),
                        ));
                    }
                } else if b == b'r'
                    && code[k..].starts_with("return")
                    && (k == 0 || !is_ident_byte(bytes[k - 1]))
                    && !is_ident_byte(*bytes.get(k + 6).unwrap_or(&b' '))
                    && !file.is_test(k)
                {
                    out.push(Finding::new(
                        "F02",
                        &file.rel,
                        file.line_of(k),
                        format!(
                            "early `return` between `{}.pop()` and `{}.push(..)` in `{}` leaks \
                             the popped workspace",
                            pop.receiver, pop.receiver, f.name
                        ),
                    ));
                }
                k += 1;
            }
        }
    }
}

/// F03: discarded `Result` from a fallible workspace call.
fn f03_discarded_result(ws: &Workspace, graph: &Graph, out: &mut Vec<Finding>) {
    for (id, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let file = &ws.files[f.file];
        for (ci, call) in f.calls.iter().enumerate() {
            if call.discard == Discard::Used || file.is_test(call.at) {
                continue;
            }
            let fallible = graph.targets[id][ci]
                .iter()
                .find(|&&t| ws.fns[t].returns_result && !ws.fns[t].is_test);
            if let Some(&t) = fallible {
                let how = match call.discard {
                    Discard::LetUnderscore => "`let _ =`",
                    _ => "a bare statement",
                };
                out.push(Finding::new(
                    "F03",
                    &file.rel,
                    file.line_of(call.at),
                    format!("{how} discards the `Result` of `{}`", ws.display(t)),
                ));
            }
        }
    }
}

/// F05: dead `pub` exports — unreachable from every root and textually
/// unreferenced across the whole workspace.
fn f05_dead_pub_fns(ws: &Workspace, graph: &Graph, hot: &[usize], out: &mut Vec<Finding>) {
    let mut seeds: Vec<usize> = hot.to_vec();
    for (id, f) in ws.fns.iter().enumerate() {
        let rel = &ws.files[f.file].rel;
        if f.is_test
            || f.name == "main"
            || rel.starts_with("tests/")
            || rel.contains("/tests/")
            || rel.starts_with("benches/")
            || rel.contains("/benches/")
            || rel.starts_with("examples/")
            || rel.contains("/examples/")
            || rel.contains("/bin/")
        {
            seeds.push(id);
        }
    }
    let reach = propagate(&graph.edges, &seeds);
    for (id, f) in ws.fns.iter().enumerate() {
        if !f.is_pub || f.is_test || f.trait_impl || reach.reached(id) {
            continue;
        }
        let rel = &ws.files[f.file].rel;
        if rel.contains("/bin/") || rel.ends_with("/main.rs") {
            continue; // bin-local helpers die with the bin's own dead-code lint
        }
        if referenced_elsewhere(ws, id) {
            continue;
        }
        out.push(Finding::new(
            "F05",
            rel,
            f.line,
            format!(
                "dead export: `pub fn {}` is unreachable from every root and never referenced",
                ws.display(id)
            ),
        ));
    }
}

/// Whether the fn's name occurs anywhere in the workspace other than at
/// a declaration of that same name (re-exports, doc-free references,
/// trait signatures all count).
fn referenced_elsewhere(ws: &Workspace, id: usize) -> bool {
    let name = ws.fns[id].name.as_str();
    for (fi, file) in ws.files.iter().enumerate() {
        let code = &file.code;
        let bytes = code.as_bytes();
        let mut from = 0;
        while let Some(rel) = code[from..].find(name) {
            let at = from + rel;
            from = at + 1;
            if (at > 0 && is_ident_byte(bytes[at - 1]))
                || bytes.get(at + name.len()).is_some_and(|&b| is_ident_byte(b))
            {
                continue;
            }
            let is_decl = ws.fns.iter().any(|f| f.file == fi && f.name_at == at && f.name == name);
            if !is_decl {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{CrateDeps, Graph};

    fn analyze(files: &[(&str, &str)]) -> Vec<Finding> {
        let ws = Workspace::parse(
            files.iter().map(|(rel, text)| SourceFile::parse(rel, text)).collect(),
        );
        let graph = Graph::build(&ws, &CrateDeps::default());
        run(&ws, &graph)
    }

    /// A minimal set of hot roots so the FLOW meta-rule stays quiet.
    const ROOT_STUBS: [(&str, &str); 3] = [
        ("crates/knds/src/ta.rs", "pub fn rds_with() {}\n"),
        ("crates/knds/src/weighted.rs", "pub fn rds_with() {}\n"),
        ("crates/dradix/src/dag.rs", "pub fn build_into() {}\n"),
    ];

    fn with_stubs<'a>(files: &[(&'a str, &'a str)]) -> Vec<(&'a str, &'a str)> {
        let mut all = files.to_vec();
        all.extend(ROOT_STUBS);
        all
    }

    fn rules(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn missing_roots_fire_the_meta_rule() {
        let findings = analyze(&[("crates/core/src/x.rs", "pub fn main() {}\n")]);
        assert_eq!(findings.iter().filter(|f| f.rule == "FLOW").count(), HOT_ROOTS.len());
    }

    #[test]
    fn f01_flags_transitive_allocation_but_not_workspace_fed() {
        let findings = analyze(&with_stubs(&[(
            "crates/knds/src/engine.rs",
            "pub fn rds_with() { helper(); fed(); }\n\
             pub fn sds_with() { rds_with(); }\n\
             fn helper() { let v = Vec::new(); drop(v); }\n\
             // flow: workspace-fed\n\
             fn fed() { let v = vec![0u8]; drop(v); }\n",
        )]));
        let f01: Vec<&Finding> = findings.iter().filter(|f| f.rule == "F01").collect();
        assert_eq!(f01.len(), 1, "{findings:?}");
        assert!(f01[0].message.contains("Vec::new"));
        assert!(f01[0].message.contains("rds_with"), "witness chain names the root");
    }

    #[test]
    fn f01_ignores_cold_and_test_code() {
        let findings = analyze(&with_stubs(&[(
            "crates/knds/src/engine.rs",
            "pub fn rds_with() { hot(); }\n\
             pub fn sds_with() {}\n\
             fn hot() {\n    #[cfg(debug_assertions)]\n    {\n        let v = Vec::new();\n        drop(v);\n    }\n}\n\
             pub fn cold() { let v = Vec::new(); drop(v); }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { let v = Vec::new(); drop(v); }\n}\n",
        )]));
        assert!(!rules(&findings).contains(&"F01"), "{findings:?}");
    }

    #[test]
    fn f02_flags_missing_push_and_early_exits() {
        let findings = analyze(&with_stubs(&[(
            "crates/core/src/service.rs",
            "pub fn leaky(pool: &P) { let ws = pool.pop(); drop(ws); }\n\
             pub fn early(pool: &P) -> Result<(), E> {\n    let ws = pool.pop();\n    \
             if bad() { return Err(E); }\n    check(&ws)?;\n    pool.push(ws);\n    Ok(())\n}\n\
             pub fn guarded(pool: &P) { let g = Guard::new(pool.pop()); drop(g); }\n\
             pub fn clean(pool: &P) { let ws = pool.pop(); pool.push(ws); }\n\
             fn bad() -> bool { false }\nfn check(_w: &W) -> Result<(), E> { Ok(()) }\n",
        )]));
        let f02: Vec<&Finding> = findings.iter().filter(|f| f.rule == "F02").collect();
        assert_eq!(f02.len(), 3, "{f02:?}");
        assert!(f02[0].message.contains("never pushed back"));
        assert!(f02.iter().any(|f| f.message.contains("early `return`")));
        assert!(f02.iter().any(|f| f.message.contains('?')));
    }

    #[test]
    fn f03_flags_discarded_results_from_workspace_calls() {
        let findings = analyze(&with_stubs(&[(
            "crates/core/src/x.rs",
            "pub fn f() {\n    let _ = save();\n    save();\n    let r = save(); drop(r);\n    \
             infallible();\n}\n\
             fn save() -> Result<(), E> { Ok(()) }\nfn infallible() {}\n",
        )]));
        let f03: Vec<&Finding> = findings.iter().filter(|f| f.rule == "F03").collect();
        assert_eq!(f03.len(), 2, "{f03:?}");
        assert!(f03[0].message.contains("let _ ="));
        assert!(f03[1].message.contains("bare statement"));
    }

    #[test]
    fn f04_flags_reachable_panics_and_indexing() {
        let findings = analyze(&with_stubs(&[(
            "crates/knds/src/engine.rs",
            "pub fn rds_with(xs: &[u32]) -> u32 { inner(xs) }\n\
             pub fn sds_with() {}\n\
             fn inner(xs: &[u32]) -> u32 { let v = lookup().unwrap(); v + xs[0] }\n\
             fn lookup() -> Option<u32> { None }\n",
        )]));
        let f04: Vec<&Finding> = findings.iter().filter(|f| f.rule == "F04").collect();
        assert_eq!(f04.len(), 2, "{f04:?}");
        assert!(f04.iter().any(|f| f.message.contains(".unwrap")));
        assert!(f04.iter().any(|f| f.message.contains("slice indexing")));
    }

    #[test]
    fn f05_flags_dead_exports_but_not_referenced_ones() {
        let findings = analyze(&with_stubs(&[
            (
                "crates/core/src/x.rs",
                "pub fn orphaned_stub() {}\npub fn reexported_helper() {}\npub fn used() {}\n",
            ),
            ("crates/core/src/lib.rs", "pub use x::reexported_helper;\n"),
            ("crates/core/tests/t.rs", "fn main() { used(); }\n"),
        ]));
        let f05: Vec<&Finding> = findings.iter().filter(|f| f.rule == "F05").collect();
        assert_eq!(f05.len(), 1, "{f05:?}");
        assert!(f05[0].message.contains("orphaned_stub"));
    }
}
