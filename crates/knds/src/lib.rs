//! kNDS — k-Nearest Document Search (Section 5 of the EDBT 2014 paper).
//!
//! The second core contribution of *Efficient Concept-based Document
//! Ranking*: an early-termination, branch-and-bound top-k algorithm that
//! evaluates both query types of Section 3.3 —
//!
//! * **RDS** (Relevant Document Search): top-k documents minimizing the
//!   document-query distance `Ddq` (Equation 2);
//! * **SDS** (Similar Document Search): top-k documents minimizing the
//!   symmetric document-document distance `Ddd` (Equation 3) —
//!
//! without any distance precomputation. The algorithm runs a parallel,
//! valid-path-constrained breadth-first expansion of the ontology from
//! every query concept, maintains per-document partial distances
//! (Equations 5/7) and lower bounds (Equations 6/8), and probes the DRC
//! algorithm for an exact distance only when the **error estimate**
//! `εd = 1 − Dpartial/D⁻` (Equation 9) drops to the configured threshold
//! `εθ`. It terminates when the lower bound of every unexamined document
//! exceeds the distance of the current k-th result (`D⁻ ≥ D⁺ₖ`).
//!
//! Baselines from the paper's evaluation live alongside:
//!
//! * [`baseline`] — the no-pruning comparator of Section 6.2 (DRC distance
//!   for *every* document);
//! * [`ta`] — a Threshold Algorithm comparator for RDS over
//!   distance-sorted postings, the Section 4.1 strawman the paper argues
//!   is impractical for SDS (implemented here to let the benches test that
//!   argument).
//!
//! Engineering extensions around the core algorithm:
//!
//! * [`weighted`] — kNDS over weighted edges (bucketed Dijkstra), the
//!   Section 7 future-work variant;
//! * [`sharded`] — the paper's MapReduce sketch as thread-parallel
//!   partitioned search with exact top-k merge;
//! * [`tuner`] — automatic `εθ` selection (the Figure 7 procedure);
//! * [`trace`] — structured search traces (the Table 2 walkthrough);
//! * progressive streaming (`rds_streaming`) per Section 5.3,
//!   optimization 4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod config;
#[cfg(feature = "counters")]
pub mod counters;
pub mod engine;
pub mod metrics;
pub mod sharded;
pub mod ta;
pub mod trace;
pub mod tuner;
pub mod util;
pub mod weighted;
pub mod workspace;

pub use config::KndsConfig;
pub use engine::{Knds, QueryResult, RankedDoc};
pub use metrics::QueryMetrics;
pub use sharded::{rds_sharded, sds_sharded, ShardView};
pub use trace::TraceEvent;
pub use tuner::{tune_error_threshold, TuneFor};
pub use weighted::WeightedKnds;
pub use workspace::KndsWorkspace;
