//! The access abstraction the ranking algorithms program against.
//!
//! The paper's prototype reads postings and forward entries from MySQL and
//! reports that access time as the I/O component of query latency
//! (Section 6). [`IndexSource`] abstracts that boundary so the same kNDS
//! code can run against resident CSR indexes ([`MemorySource`]) or a
//! per-access on-disk image ([`FileSource`](crate::FileSource)); the query
//! engine times every call through the trait and reports the total as I/O
//! time.
//!
//! Methods take `&mut Vec` output buffers rather than returning slices so
//! the file-backed implementation can exist without self-referential
//! borrows and the hot loop can reuse allocations.

use crate::{ForwardIndex, InvertedIndex};
use cbr_corpus::DocId;
use cbr_ontology::ConceptId;

/// Read access to the inverted and forward indexes.
pub trait IndexSource {
    /// Appends the documents containing `c` (sorted by id) to `out`.
    fn postings(&self, c: ConceptId, out: &mut Vec<DocId>);

    /// Appends the sorted concept set of `d` to `out`.
    fn doc_concepts(&self, d: DocId, out: &mut Vec<ConceptId>);

    /// Number of distinct concepts of `d` without materializing them.
    fn doc_len(&self, d: DocId) -> usize;

    /// Number of documents in the collection.
    fn num_docs(&self) -> usize;

    /// Whether document `d` is live. Sources with deletion support
    /// (tombstones) override this; static sources are always live. Dead
    /// documents never appear in postings, and the search engines also
    /// exclude them from exhaustive fallbacks.
    fn is_live(&self, d: DocId) -> bool {
        let _ = d;
        true
    }
}

/// Fully resident indexes.
#[derive(Debug, Clone)]
pub struct MemorySource {
    inverted: InvertedIndex,
    forward: ForwardIndex,
}

impl MemorySource {
    /// Wraps prebuilt indexes. Panics if they disagree on corpus size.
    pub fn new(inverted: InvertedIndex, forward: ForwardIndex) -> Self {
        assert_eq!(
            inverted.num_docs(),
            forward.num_docs(),
            "inverted and forward indexes cover different corpora"
        );
        #[cfg(debug_assertions)]
        {
            let checked = crate::validate::validate_pair(&forward, &inverted);
            debug_assert!(checked.is_ok(), "index pair cross-consistency violated: {checked:?}");
        }
        MemorySource { inverted, forward }
    }

    /// Builds both indexes from a corpus.
    pub fn build(corpus: &cbr_corpus::Corpus, num_concepts: usize) -> Self {
        Self::new(InvertedIndex::build(corpus, num_concepts), ForwardIndex::build(corpus))
    }

    /// The underlying inverted index.
    pub fn inverted(&self) -> &InvertedIndex {
        &self.inverted
    }

    /// The underlying forward index.
    pub fn forward(&self) -> &ForwardIndex {
        &self.forward
    }
}

impl IndexSource for MemorySource {
    #[inline]
    fn postings(&self, c: ConceptId, out: &mut Vec<DocId>) {
        out.extend_from_slice(self.inverted.postings(c));
    }

    #[inline]
    fn doc_concepts(&self, d: DocId, out: &mut Vec<ConceptId>) {
        out.extend_from_slice(self.forward.concepts(d));
    }

    #[inline]
    fn doc_len(&self, d: DocId) -> usize {
        self.forward.num_concepts(d)
    }

    #[inline]
    fn num_docs(&self) -> usize {
        self.forward.num_docs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_corpus::Corpus;

    fn source() -> MemorySource {
        let corpus = Corpus::from_concept_sets(vec![
            (vec![ConceptId(1), ConceptId(3)], 0),
            (vec![ConceptId(3)], 0),
        ]);
        MemorySource::build(&corpus, 5)
    }

    #[test]
    fn memory_source_reads_both_directions() {
        let s = source();
        let mut docs = Vec::new();
        s.postings(ConceptId(3), &mut docs);
        assert_eq!(docs, vec![DocId(0), DocId(1)]);
        let mut cs = Vec::new();
        s.doc_concepts(DocId(0), &mut cs);
        assert_eq!(cs, vec![ConceptId(1), ConceptId(3)]);
        assert_eq!(s.doc_len(DocId(1)), 1);
        assert_eq!(s.num_docs(), 2);
    }

    #[test]
    fn buffers_are_appended_not_replaced() {
        let s = source();
        let mut docs = vec![DocId(9)];
        s.postings(ConceptId(3), &mut docs);
        assert_eq!(docs[0], DocId(9));
        assert_eq!(docs.len(), 3);
    }

    #[test]
    #[should_panic(expected = "different corpora")]
    fn mismatched_indexes_panic() {
        let a = Corpus::from_concept_sets(vec![(vec![ConceptId(1)], 0)]);
        let b = Corpus::from_concept_sets(vec![(vec![ConceptId(1)], 0), (vec![], 0)]);
        MemorySource::new(InvertedIndex::build(&a, 2), ForwardIndex::build(&b));
    }
}
