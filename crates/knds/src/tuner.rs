//! Automatic error-threshold selection.
//!
//! Section 5.2: "determining a good error threshold εθ generally depends on
//! several factors such as: (i) the query type, (ii) the query size,
//! (iii) the ontology characteristics, and (iv) the document collection
//! statistics. Thereby, we use the error threshold as an input parameter."
//! The paper then finds the per-collection optimum empirically (Figure 7)
//! and hardcodes it. [`tune_error_threshold`] automates exactly that
//! procedure: run a small sample workload at each candidate threshold and
//! keep the fastest. Because εθ never affects result *correctness* (only
//! the work split), tuning is safe to run on live data.

use crate::config::KndsConfig;
use crate::engine::Knds;
use cbr_index::IndexSource;
use cbr_ontology::{ConceptId, Ontology};
use std::time::{Duration, Instant};

/// Which query type to tune for (the optimum differs; Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneFor {
    /// Relevant-document search workloads.
    Rds,
    /// Similar-document search workloads.
    Sds,
}

/// One candidate's measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunePoint {
    /// The candidate `εθ`.
    pub eps: f64,
    /// Total wall time over the sample workload.
    pub elapsed: Duration,
}

/// Measures every candidate threshold over the sample workload and returns
/// the fastest along with the full sweep (for reporting).
///
/// # Panics
///
/// Panics if `candidates` or `sample` is empty, or `k` is zero.
pub fn tune_error_threshold<S: IndexSource>(
    ontology: &Ontology,
    source: &S,
    kind: TuneFor,
    sample: &[Vec<ConceptId>],
    k: usize,
    candidates: &[f64],
    base: &KndsConfig,
) -> (f64, Vec<TunePoint>) {
    assert!(!candidates.is_empty(), "at least one candidate threshold required");
    assert!(!sample.is_empty(), "at least one sample query required");
    let mut sweep = Vec::with_capacity(candidates.len());
    let mut best = (f64::INFINITY, candidates[0]);
    // One workspace across the whole sweep: the tuner measures steady-state
    // query cost, so every candidate after the first runs warm.
    let mut ws = crate::workspace::KndsWorkspace::new();
    for &eps in candidates {
        let cfg = base.clone().with_error_threshold(eps);
        let engine = Knds::new(ontology, source, cfg);
        let t0 = Instant::now();
        for q in sample {
            let r = match kind {
                TuneFor::Rds => engine.rds_with(&mut ws, q, k),
                TuneFor::Sds => engine.sds_with(&mut ws, q, k),
            };
            std::hint::black_box(r.results.len());
        }
        let elapsed = t0.elapsed();
        sweep.push(TunePoint { eps, elapsed });
        let secs = elapsed.as_secs_f64();
        if secs.total_cmp(&best.0).is_lt() {
            best = (secs, eps);
        }
    }
    (best.1, sweep)
}

/// The default candidate grid (the Figure 7 sweep).
pub const DEFAULT_CANDIDATES: &[f64] = &[0.0, 0.25, 0.5, 0.75, 1.0];

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_corpus::{CorpusGenerator, CorpusProfile};
    use cbr_index::MemorySource;
    use cbr_ontology::{GeneratorConfig, OntologyGenerator};

    #[test]
    fn tuner_returns_a_candidate_and_full_sweep() {
        let ont = OntologyGenerator::new(GeneratorConfig::small(800)).generate();
        let corpus = CorpusGenerator::new(
            &ont,
            CorpusProfile::radio_like().with_num_docs(80).with_mean_concepts(10.0),
        )
        .generate();
        let source = MemorySource::build(&corpus, ont.len());
        let sample: Vec<Vec<ConceptId>> = corpus
            .documents()
            .filter(|d| d.num_concepts() >= 2)
            .take(4)
            .map(|d| d.concepts()[..2].to_vec())
            .collect();
        let (best, sweep) = tune_error_threshold(
            &ont,
            &source,
            TuneFor::Rds,
            &sample,
            5,
            DEFAULT_CANDIDATES,
            &KndsConfig::default(),
        );
        assert!(DEFAULT_CANDIDATES.contains(&best));
        assert_eq!(sweep.len(), DEFAULT_CANDIDATES.len());
        assert!(sweep.iter().all(|p| p.elapsed > Duration::ZERO));
    }

    #[test]
    fn tuner_works_for_sds() {
        let ont = OntologyGenerator::new(GeneratorConfig::small(500)).generate();
        let corpus = CorpusGenerator::new(
            &ont,
            CorpusProfile::patient_like().with_num_docs(40).with_mean_concepts(15.0),
        )
        .generate();
        let source = MemorySource::build(&corpus, ont.len());
        let sample: Vec<Vec<ConceptId>> = corpus
            .documents()
            .filter(|d| d.num_concepts() > 0)
            .take(3)
            .map(|d| d.concepts().to_vec())
            .collect();
        let (best, _) = tune_error_threshold(
            &ont,
            &source,
            TuneFor::Sds,
            &sample,
            3,
            &[0.0, 1.0],
            &KndsConfig::default(),
        );
        assert!(best == 0.0 || best == 1.0);
    }

    #[test]
    #[should_panic(expected = "candidate threshold")]
    fn empty_candidates_panic() {
        let ont = OntologyGenerator::new(GeneratorConfig::small(50)).generate();
        let corpus = cbr_corpus::Corpus::default();
        let source = MemorySource::build(&corpus, ont.len());
        tune_error_threshold(
            &ont,
            &source,
            TuneFor::Rds,
            &[vec![cbr_ontology::ConceptId(1)]],
            1,
            &[],
            &KndsConfig::default(),
        );
    }
}
