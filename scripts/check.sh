#!/usr/bin/env bash
# Canonical verification for the workspace: formatting, lints, the
# self-hosted audit (static rules A01-A07 + structural invariants), the
# cbr-sched schedule exploration (an honest pass that must run clean
# plus a seeded-bug pass proving the checker is not vacuous), and
# tests. Run from the repository root. All six must pass before merging.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo run -q -p cbr-audit -- all
# Honest tree: every concurrency harness must explore clean, and the CI
# budget must cover at least a thousand distinct interleavings.
cargo run -q -p cbr-sched -- --budget 1200 --min-schedules 1000 --json
# Non-vacuity: with the seeded bugs compiled in, the checker must find
# them and every printed schedule ID must reproduce its finding.
cargo run -q -p cbr-sched --features seeded-races -- \
    --budget 200 \
    --harness seeded-unlock-race --harness seeded-lock-inversion \
    --expect-findings
cargo test -q
