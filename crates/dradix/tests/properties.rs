//! Property-based tests for the D-Radix DAG invariant suite.
//!
//! Random ontologies come from proptest-chosen seeds through the
//! deterministic generator; document and query concept sets are sampled
//! from them. The properties pin down two claims the audit layer makes:
//! `validate()` accepts every honestly built+tuned DAG, and the
//! corruption injectors it uses to prove non-vacuity are in fact caught.

use cbr_dradix::DRadixDag;
use cbr_ontology::{ConceptId, GeneratorConfig, Ontology, OntologyGenerator};
use proptest::prelude::*;

fn ontology(seed: u64, n: usize) -> Ontology {
    OntologyGenerator::new(GeneratorConfig::small(n).with_seed(seed)).generate()
}

fn pick_concepts(ont: &Ontology, picks: &[u32]) -> Vec<ConceptId> {
    let mut v: Vec<ConceptId> = picks.iter().map(|&p| ConceptId(p % ont.len() as u32)).collect();
    v.sort_unstable();
    v.dedup();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any honestly built and tuned DAG passes the full validator:
    /// structure (path compression, arena links), the downward tuning
    /// fixpoint, and a brute-force distance cross-check of every member.
    #[test]
    fn tuned_dag_validates(
        seed in 0u64..500,
        doc_picks in prop::collection::vec(0u32..10_000, 1..8),
        query_picks in prop::collection::vec(0u32..10_000, 1..5),
    ) {
        let ont = ontology(seed, 80);
        let doc = pick_concepts(&ont, &doc_picks);
        let query = pick_concepts(&ont, &query_picks);
        let mut dag = DRadixDag::build(&ont, &doc, &query);
        dag.tune();
        let verdict = dag.validate(&ont, &doc, &query);
        prop_assert!(verdict.is_ok(), "violations: {:?}", verdict);
    }

    /// An inflated member distance never slips past `validate()`: whenever
    /// the injector finds a corruptible node, the validator must object.
    #[test]
    fn inflated_distance_is_caught(
        seed in 0u64..500,
        doc_picks in prop::collection::vec(0u32..10_000, 1..8),
        query_picks in prop::collection::vec(0u32..10_000, 1..5),
    ) {
        let ont = ontology(seed, 80);
        let doc = pick_concepts(&ont, &doc_picks);
        let query = pick_concepts(&ont, &query_picks);
        let mut dag = DRadixDag::build(&ont, &doc, &query);
        dag.tune();
        if dag.corrupt_inflate_distance() {
            prop_assert!(dag.validate(&ont, &doc, &query).is_err());
        }
    }

    /// A re-materialized chain node (broken path compression) never slips
    /// past `validate_structure()`.
    #[test]
    fn broken_compression_is_caught(
        seed in 0u64..500,
        doc_picks in prop::collection::vec(0u32..10_000, 1..8),
        query_picks in prop::collection::vec(0u32..10_000, 1..5),
    ) {
        let ont = ontology(seed, 80);
        let doc = pick_concepts(&ont, &doc_picks);
        let query = pick_concepts(&ont, &query_picks);
        let mut dag = DRadixDag::build(&ont, &doc, &query);
        dag.tune();
        if dag.corrupt_break_compression(&ont) {
            prop_assert!(dag.validate_structure().is_err());
        }
    }
}
