//! A live rendition of the paper's Table 2: the kNDS data structures,
//! iteration by iteration, on the Figure 3 ontology.
//!
//! Table 2 traces an RDS query `q = {F, I}` with `k = 2` over a small
//! collection; the paper's exact documents d1–d6 are not published, so this
//! example uses a six-document collection over the same ontology and
//! prints the same columns from the real engine's trace stream.
//!
//! ```sh
//! cargo run --release --example algorithm_trace
//! ```

use cbr_corpus::Corpus;
use cbr_index::MemorySource;
use cbr_knds::{Knds, KndsConfig, TraceEvent};
use cbr_ontology::fixture;

fn main() {
    let fig = fixture::figure3();
    let ont = &fig.ontology;
    let c = |n: &str| fig.concept(n);

    // A collection in the spirit of Table 2's d1..d6.
    let corpus = Corpus::from_concept_sets(vec![
        (vec![c("D"), c("M")], 0),
        (vec![c("F"), c("I")], 0),
        (vec![c("J"), c("N")], 0),
        (vec![c("T"), c("C")], 0),
        (vec![c("V"), c("L")], 0),
        (vec![c("G"), c("H")], 0),
    ]);
    println!("collection:");
    for d in corpus.documents() {
        let labels: Vec<&str> = d.concepts().iter().map(|&cc| ont.label(cc)).collect();
        println!("  {} = {{{}}}", d.id(), labels.join(", "));
    }

    let source = MemorySource::build(&corpus, ont.len());
    let knds = Knds::new(ont, &source, KndsConfig::default().with_error_threshold(1.0));
    let q = vec![c("F"), c("I")];
    println!("\nRDS query q = {{F, I}}, k = 2, εθ = 1.0 — the Table 2 setup\n");

    let result = knds.rds_traced(&q, 2, |event| match event {
        TraceEvent::LevelStart { level, frontier } => {
            println!("── iteration {level}: {frontier} BFS states ──");
        }
        TraceEvent::Candidate { doc, covered, partial } => {
            println!("   Ld: {doc} covered {covered}/2 query nodes, partial Σ = {partial}");
        }
        TraceEvent::Examined { doc, lower_bound, error, exact, via_drc } => {
            let how = if via_drc { "DRC probe" } else { "partial sums" };
            println!(
                "   examine {doc}: D⁻ = {lower_bound}, ε = {error:.2} → exact {exact} ({how})"
            );
        }
        TraceEvent::ExamineBreak { min_unexamined, threshold } => {
            println!("   D⁻ (unexamined) = {min_unexamined:.1}, D⁺k = {threshold:.1}");
        }
        TraceEvent::Terminated { level, d_minus, threshold } => {
            println!("\nterminated at iteration {level}: D⁻ = {d_minus} ≥ D⁺k = {threshold}");
        }
        TraceEvent::Exhausted { finalized } => {
            println!("\nontology exhausted; {finalized} candidates finalized from partial sums");
        }
    });

    println!("\ntop-2 results (the contents of Hk):");
    for r in &result.results {
        println!("  {}  Ddq = {}", r.doc, r.distance);
    }
    println!(
        "\n[{} documents examined of {}, {} BFS levels]",
        result.metrics.docs_examined,
        corpus.len(),
        result.metrics.levels
    );
}
