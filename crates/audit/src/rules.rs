//! The lint rules, A01–A09.
//!
//! Every rule has a stable identifier, runs over [`SourceFile`]s (or
//! `Cargo.toml` manifests for A06), and reports findings that are then
//! filtered through the checked-in allowlist (`audit.allow`). The rules
//! are deliberately token-level — no syn, no rustc — so the audit builds
//! offline and runs in milliseconds; see `DESIGN.md` § "Auditing &
//! invariants" for what each rule protects and why a scanner suffices.

use crate::report::Finding;
use crate::scanner::{slice_index_sites, SourceFile};
use std::collections::BTreeSet;

/// Hot-path modules where A02 (no panics, no slice indexing) applies:
/// every query traverses these, so a panic is a service outage and a
/// slice index is an unvalidated trust boundary.
pub const HOT_PATHS: [&str; 4] = [
    "crates/knds/src/engine.rs",
    "crates/knds/src/ta.rs",
    "crates/dradix/src/dag.rs",
    "crates/dradix/src/drc.rs",
];

/// Directories whose `pub fn` entry points A03 inspects.
const A03_SCOPES: [&str; 2] = ["crates/knds/src/", "crates/core/src/"];

/// Crates whose concurrency A07 requires to flow through the
/// `sched::sync` facade (the facade itself lives in `crates/sched`, so
/// it is out of scope by construction).
const A07_SCOPES: [&str; 2] = ["crates/knds/src/", "crates/core/src/"];

/// Raw concurrency tokens A07 rejects, with the facade replacement the
/// message points at.
const A07_NEEDLES: [(&str, &str); 4] = [
    ("std::sync::", "`std::sync`"),
    ("std::thread::", "`std::thread`"),
    ("parking_lot", "`parking_lot`"),
    ("crossbeam", "`crossbeam`"),
];

/// Query-path files where A08 (no hash tables) applies: the dense
/// epoch-stamped tables (kNDS workspace + D-Radix concept slots) replaced
/// every hash-keyed structure on the per-state and per-probe paths, and
/// this rule keeps them from creeping back in.
pub const A08_SCOPES: [&str; 4] = [
    "crates/knds/src/engine.rs",
    "crates/knds/src/weighted.rs",
    "crates/knds/src/workspace.rs",
    "crates/dradix/src/dag.rs",
];

/// Hash-table type tokens A08 rejects. `HashMap`/`HashSet` also match as
/// suffixes of `FxHashMap`/`FxHashSet`; the finding reports the full
/// identifier at the site.
const A08_NEEDLES: [&str; 2] = ["HashMap", "HashSet"];

/// The read half of the engine where A09 (lock-free query path) applies:
/// the immutable snapshot and the concurrent service wrapper. A query's
/// only synchronization is one `Published` epoch load; any `RwLock`
/// appearing here would put a lock acquisition back on every read.
pub const A09_SCOPES: [&str; 2] = ["crates/core/src/service.rs", "crates/core/src/snapshot.rs"];

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether `rel` is library/binary source (rules skip test trees).
fn is_lib_source(rel: &str) -> bool {
    (rel.starts_with("src/") || (rel.starts_with("crates/") && rel.contains("/src/")))
        && rel.ends_with(".rs")
}

/// Whether `rel` is a crate root (`lib.rs`, `main.rs`, or a `bin/` file).
fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs"
        || rel.ends_with("/src/lib.rs")
        || rel.ends_with("/src/main.rs")
        || rel == "src/main.rs"
        || rel.contains("/src/bin/")
        || rel.starts_with("src/bin/")
}

/// A01: raw `partial_cmp` calls on floats order `NaN` as incomparable and
/// silently drop candidates; distance comparisons must go through
/// `total_cmp` (or the `OrdF64` wrapper that delegates to it).
pub fn a01_no_partial_cmp(file: &SourceFile) -> Vec<Finding> {
    if !is_lib_source(&file.rel) {
        return Vec::new();
    }
    file.code_matches(".partial_cmp(")
        .into_iter()
        .filter(|&o| !file.is_test(o))
        .map(|o| {
            Finding::new(
                "A01",
                &file.rel,
                file.line_of(o),
                "`.partial_cmp(` on a distance: use `f64::total_cmp` (NaN-total order) instead",
            )
        })
        .collect()
}

/// A02: hot-path modules must not contain `unwrap`/`expect`/`panic!` or
/// slice indexing in non-test code — degraded results beat a poisoned
/// workspace pool.
pub fn a02_no_hot_path_panics(file: &SourceFile) -> Vec<Finding> {
    if !HOT_PATHS.contains(&file.rel.as_str()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (needle, what) in
        [(".unwrap(", "`.unwrap()`"), (".expect(", "`.expect()`"), ("panic!", "`panic!`")]
    {
        for o in file.code_matches(needle) {
            if !file.is_test(o) {
                out.push(Finding::new(
                    "A02",
                    &file.rel,
                    file.line_of(o),
                    format!("{what} in hot-path module: return a degraded result (get/let-else + debug_assert) instead"),
                ));
            }
        }
    }
    for o in slice_index_sites(file) {
        if !file.is_test(o) {
            out.push(Finding::new(
                "A02",
                &file.rel,
                file.line_of(o),
                "slice indexing in hot-path module: use `.get()`/`.get_mut()` with a fallback",
            ));
        }
    }
    out.sort_by_key(|f| f.line);
    out
}

/// A03: a `pub fn` query entry point that allocates its own
/// `KndsWorkspace` must have a `_with` sibling taking a caller-owned
/// workspace, so services can pool scratch instead of re-allocating.
pub fn a03_workspace_variants(file: &SourceFile) -> Vec<Finding> {
    if !A03_SCOPES.iter().any(|s| file.rel.starts_with(s)) || file.rel.contains("/bin/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for o in file.code_matches("pub fn ") {
        if file.is_test(o) {
            continue;
        }
        let Some((name, body)) = fn_name_and_body(&file.code, o) else {
            continue;
        };
        if name.ends_with("_with") || !body.contains("KndsWorkspace::new") {
            continue;
        }
        let sibling = format!("fn {name}_with");
        if !file.code.contains(&sibling) {
            out.push(Finding::new(
                "A03",
                &file.rel,
                file.line_of(o),
                format!(
                    "`pub fn {name}` allocates a KndsWorkspace but has no `{name}_with` \
                     workspace-reusing variant"
                ),
            ));
        }
    }
    out
}

/// Parses the identifier after `pub fn ` at `at` and extracts the body
/// between the fn's braces.
fn fn_name_and_body(code: &str, at: usize) -> Option<(String, &str)> {
    let bytes = code.as_bytes();
    let mut i = at + "pub fn ".len();
    let start = i;
    while i < bytes.len() && is_ident_byte(bytes[i]) {
        i += 1;
    }
    if i == start {
        return None;
    }
    let name = code[start..i].to_string();
    // Find the body `{` at zero paren/bracket nesting (skips the arg list
    // and any array types in the signature).
    let mut nest = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' => nest += 1,
            b')' | b']' => nest = nest.saturating_sub(1),
            b';' if nest == 0 => return None, // trait method without body
            b'{' if nest == 0 => break,
            _ => {}
        }
        i += 1;
    }
    let open = i;
    let mut depth = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((name, &code[open..=i]));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// A04: every crate root forbids `unsafe` — the whole workspace is safe
/// Rust and must stay that way by construction, not convention.
pub fn a04_forbid_unsafe(file: &SourceFile) -> Vec<Finding> {
    if !is_crate_root(&file.rel) {
        return Vec::new();
    }
    if file.code.contains("#![forbid(unsafe_code)]") {
        Vec::new()
    } else {
        vec![Finding::new("A04", &file.rel, 1, "crate root is missing `#![forbid(unsafe_code)]`")]
    }
}

/// A05: `use serde` must sit behind the `serde` cargo feature — the
/// offline build resolves serde to an empty stub, so an ungated import is
/// a build break waiting for the default feature set.
///
/// `gated_files` holds files whose *module declaration* is feature-gated
/// in the parent (e.g. `ontology/src/ser.rs`); everything in them is
/// implicitly gated.
pub fn a05_serde_gated(file: &SourceFile, gated_files: &BTreeSet<String>) -> Vec<Finding> {
    if !is_lib_source(&file.rel) || gated_files.contains(&file.rel) {
        return Vec::new();
    }
    file.code_matches("use serde")
        .into_iter()
        .filter(|&o| !file.is_test(o) && !file.is_serde_gated(o))
        .map(|o| {
            Finding::new(
                "A05",
                &file.rel,
                file.line_of(o),
                "`use serde` outside a `#[cfg(feature = \"serde\")]` gate breaks the offline build",
            )
        })
        .collect()
}

/// Collects files whose `mod x;` declaration is serde-gated in a parent
/// module file, making the whole child file implicitly gated for A05.
pub fn serde_gated_files(files: &[SourceFile]) -> BTreeSet<String> {
    let mut gated = BTreeSet::new();
    for f in files {
        for o in f.code_matches("mod ") {
            if !f.is_serde_gated(o) {
                continue;
            }
            // `pub mod name;` — a declaration, not an inline `mod { }`.
            let bytes = f.code.as_bytes();
            let mut i = o + "mod ".len();
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            let mut j = i;
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if i > start && bytes.get(j) == Some(&b';') {
                let name = &f.code[start..i];
                if let Some(dir) = f.rel.rsplit_once('/').map(|(d, _)| d) {
                    gated.insert(format!("{dir}/{name}.rs"));
                    gated.insert(format!("{dir}/{name}/mod.rs"));
                }
            }
        }
    }
    gated
}

/// A06: every dependency in every manifest must resolve by `path` or
/// `workspace = true` — the build environment has no registry access, so
/// a version-only dependency can never build.
pub fn a06_no_registry_deps(rel: &str, content: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut section = String::new();
    let mut table_dep: Option<(usize, String, bool)> = None; // line, name, satisfied
    let flush = |out: &mut Vec<Finding>, t: &mut Option<(usize, String, bool)>| {
        if let Some((line, name, ok)) = t.take() {
            if !ok {
                out.push(Finding::new(
                    "A06",
                    rel,
                    line,
                    format!("dependency `{name}` has neither `path` nor `workspace = true`"),
                ));
            }
        }
    };
    for (idx, raw) in content.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            flush(&mut out, &mut table_dep);
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            // `[dependencies.foo]`-style: the section IS one dependency.
            if let Some((head, name)) = section.rsplit_once('.') {
                if head.ends_with("dependencies") {
                    table_dep = Some((idx + 1, name.to_string(), false));
                }
            }
            continue;
        }
        if let Some(dep) = &mut table_dep {
            if line.starts_with("path") || line.replace(' ', "").starts_with("workspace=true") {
                dep.2 = true;
            }
            continue;
        }
        let in_dep_section = section == "dependencies"
            || section.ends_with("-dependencies")
            || section.ends_with(".dependencies");
        if !in_dep_section || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((name, value)) = line.split_once('=') {
            let (name, value) = (name.trim(), value.trim());
            if !value.contains("path") && !value.replace(' ', "").contains("workspace=true") {
                out.push(Finding::new(
                    "A06",
                    rel,
                    idx + 1,
                    format!("dependency `{name}` has neither `path` nor `workspace = true`"),
                ));
            }
        }
    }
    flush(&mut out, &mut table_dep);
    out
}

/// A07: non-test code in the facade-covered crates must not reach for
/// raw `std::sync`/`std::thread`, `parking_lot`, or `crossbeam` — every
/// primitive goes through `sched::sync`, so the `cbr-sched` model
/// checker sees (and can exhaustively reorder) every synchronization
/// point. A raw primitive is invisible to the scheduler and silently
/// shrinks the explored state space.
pub fn a07_facade_only_sync(file: &SourceFile) -> Vec<Finding> {
    if !A07_SCOPES.iter().any(|s| file.rel.starts_with(s)) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (needle, what) in A07_NEEDLES {
        for o in file.code_matches(needle) {
            if file.is_test(o) {
                continue;
            }
            out.push(Finding::new(
                "A07",
                &file.rel,
                file.line_of(o),
                format!(
                    "{what} in a model-checked crate: route concurrency through the \
                     `sched::sync` facade so `cbr-sched` can explore it"
                ),
            ));
        }
    }
    out.sort_by_key(|f| f.line);
    out
}

/// A08: the query-path files (kNDS per-state code and the D-Radix
/// per-probe build) must not use hash tables in non-test code. The dense
/// epoch-stamped tables (sized by |C| and |D|, O(1) stamped reset)
/// replaced every `FxHashMap`/`FxHashSet` on the query path; a hash
/// lookup reintroduced here puts hashing, probing, and `clear()`
/// traversals back into the per-state hot loop.
pub fn a08_no_hot_path_hash_tables(file: &SourceFile) -> Vec<Finding> {
    if !A08_SCOPES.contains(&file.rel.as_str()) {
        return Vec::new();
    }
    let bytes = file.code.as_bytes();
    let mut out = Vec::new();
    for needle in A08_NEEDLES {
        for o in file.code_matches(needle) {
            if file.is_test(o) {
                continue;
            }
            // Expand to the full identifier so `FxHashMap` is reported as
            // such, and a suffix match inside a longer name (`HashMapLike`)
            // still points at the real token.
            let mut start = o;
            while start > 0 && is_ident_byte(bytes[start - 1]) {
                start -= 1;
            }
            let mut end = o + needle.len();
            while end < bytes.len() && is_ident_byte(bytes[end]) {
                end += 1;
            }
            let ident = &file.code[start..end];
            out.push(Finding::new(
                "A08",
                &file.rel,
                file.line_of(o),
                format!(
                    "`{ident}` in a query-path file: use the dense epoch-stamped \
                     tables instead of a hash table on the per-state/per-probe path"
                ),
            ));
        }
    }
    out.sort_by_key(|f| f.line);
    out
}

/// A09: the snapshot/service read path must stay lock-free. Readers
/// revalidate their pinned [`EngineSnapshot`] with a single `Published`
/// epoch load per query; the writer serializes behind a `Mutex` that
/// queries never touch. An `RwLock` token in either file means someone
/// has put a shared-section acquisition back on the steady-state read
/// path — exactly what the snapshot/session split exists to remove.
pub fn a09_lock_free_reads(file: &SourceFile) -> Vec<Finding> {
    if !A09_SCOPES.contains(&file.rel.as_str()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for o in file.code_matches("RwLock") {
        if file.is_test(o) {
            continue;
        }
        out.push(Finding::new(
            "A09",
            &file.rel,
            file.line_of(o),
            "`RwLock` on the engine read path: queries revalidate with one `Published` \
             epoch load; writer-side state belongs behind the writer `Mutex`",
        ));
    }
    out.sort_by_key(|f| f.line);
    out
}

/// Runs every source-level rule over `files` (A06 runs separately on
/// manifests via [`a06_no_registry_deps`]).
pub fn run_source_rules(files: &[SourceFile]) -> Vec<Finding> {
    let gated = serde_gated_files(files);
    let mut out = Vec::new();
    for f in files {
        out.extend(a01_no_partial_cmp(f));
        out.extend(a02_no_hot_path_panics(f));
        out.extend(a03_workspace_variants(f));
        out.extend(a04_forbid_unsafe(f));
        out.extend(a05_serde_gated(f, &gated));
        out.extend(a07_facade_only_sync(f));
        out.extend(a08_no_hot_path_hash_tables(f));
        out.extend(a09_lock_free_reads(f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(rel: &str, text: &str) -> SourceFile {
        SourceFile::parse(rel, text)
    }

    #[test]
    fn a01_fires_on_partial_cmp_call() {
        let f = src("crates/knds/src/util.rs", "fn f(a: f64, b: f64) { a.partial_cmp(&b); }");
        assert_eq!(a01_no_partial_cmp(&f).len(), 1);
    }

    #[test]
    fn a01_silent_on_total_cmp_and_definitions() {
        let f = src(
            "crates/knds/src/util.rs",
            "fn partial_cmp(a: f64, b: f64) -> std::cmp::Ordering { a.total_cmp(&b) }",
        );
        assert!(a01_no_partial_cmp(&f).is_empty());
    }

    #[test]
    fn a01_skips_tests_and_non_lib_paths() {
        let body = "fn f(a: f64, b: f64) { a.partial_cmp(&b); }";
        assert!(a01_no_partial_cmp(&src("crates/knds/tests/x.rs", body)).is_empty());
        let gated = format!("#[cfg(test)]\nmod tests {{ {body} }}");
        assert!(a01_no_partial_cmp(&src("crates/knds/src/x.rs", &gated)).is_empty());
    }

    #[test]
    fn a02_fires_on_each_forbidden_token() {
        let f = src(
            "crates/knds/src/ta.rs",
            "fn f(v: &[u32], i: usize) -> u32 { let x = v.first().unwrap(); \
             let y = v.first().expect(\"y\"); if i > 0 { panic!(\"no\") } v[i] + x + y }",
        );
        let hits = a02_no_hot_path_panics(&f);
        assert_eq!(hits.len(), 4, "{hits:?}");
    }

    #[test]
    fn a02_allows_macros_attributes_and_literals() {
        let f = src(
            "crates/knds/src/ta.rs",
            "#[derive(Debug)]\nstruct S;\nfn f() -> Vec<u32> { let a: [u8; 2] = [0, 1]; \
             debug_assert!(a.len() == 2); vec![a[0] as u32] }",
        );
        let hits = a02_no_hot_path_panics(&f);
        // Only `a[0]` is real indexing; the literals/attributes are not.
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("slice indexing"));
    }

    #[test]
    fn a02_ignores_non_hot_files_and_test_mods() {
        let body = "fn f(v: &[u32]) -> u32 { v[0] }";
        assert!(a02_no_hot_path_panics(&src("crates/knds/src/util.rs", body)).is_empty());
        let gated = format!("#[cfg(test)]\nmod tests {{ {body} }}");
        assert!(a02_no_hot_path_panics(&src("crates/knds/src/ta.rs", &gated)).is_empty());
    }

    #[test]
    fn a03_fires_without_with_variant() {
        let f = src(
            "crates/knds/src/fancy.rs",
            "pub fn rds(q: &[u32]) { let mut ws = KndsWorkspace::new(); run(&mut ws, q) }",
        );
        let hits = a03_workspace_variants(&f);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("rds_with"));
    }

    #[test]
    fn a03_silent_with_sibling_variant() {
        let f = src(
            "crates/knds/src/fancy.rs",
            "pub fn rds(q: &[u32]) { let mut ws = KndsWorkspace::new(); rds_with(&mut ws, q) }\n\
             pub fn rds_with(ws: &mut KndsWorkspace, q: &[u32]) {}",
        );
        assert!(a03_workspace_variants(&f).is_empty());
    }

    #[test]
    fn a04_fires_on_missing_forbid() {
        let f = src("crates/knds/src/lib.rs", "pub mod engine;\n");
        assert_eq!(a04_forbid_unsafe(&f).len(), 1);
        let ok = src("crates/knds/src/lib.rs", "#![forbid(unsafe_code)]\npub mod engine;\n");
        assert!(a04_forbid_unsafe(&ok).is_empty());
        let non_root = src("crates/knds/src/engine.rs", "pub fn f() {}\n");
        assert!(a04_forbid_unsafe(&non_root).is_empty());
    }

    #[test]
    fn a05_fires_on_ungated_import() {
        let f = src("crates/corpus/src/document.rs", "use serde::Serialize;\n");
        assert_eq!(a05_serde_gated(&f, &BTreeSet::new()).len(), 1);
    }

    #[test]
    fn a05_silent_when_gated_or_module_gated() {
        let gated_use = src(
            "crates/corpus/src/document.rs",
            "#[cfg(feature = \"serde\")]\nuse serde::Serialize;\n",
        );
        assert!(a05_serde_gated(&gated_use, &BTreeSet::new()).is_empty());

        let lib = src(
            "crates/ontology/src/lib.rs",
            "#[cfg(feature = \"serde\")]\npub mod ser;\npub mod graph;\n",
        );
        let child = src("crates/ontology/src/ser.rs", "use serde::Serialize;\n");
        let gated = serde_gated_files(&[lib]);
        assert!(gated.contains("crates/ontology/src/ser.rs"), "{gated:?}");
        assert!(a05_serde_gated(&child, &gated).is_empty());
    }

    #[test]
    fn a06_fires_on_registry_dep() {
        let toml = "[package]\nname = \"x\"\n[dependencies]\nserde = \"1\"\nfoo = { path = \"../foo\" }\nbar = { workspace = true }\n";
        let hits = a06_no_registry_deps("crates/x/Cargo.toml", toml);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("`serde`"));
    }

    #[test]
    fn a06_handles_dotted_dep_tables_and_skips_features() {
        let toml = "[dependencies.good]\npath = \"../good\"\n[dependencies.bad]\nversion = \"2\"\n[features]\nserde = [\"dep:serde\"]\n";
        let hits = a06_no_registry_deps("crates/x/Cargo.toml", toml);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("`bad`"));
    }

    #[test]
    fn a07_fires_on_raw_primitives_in_scoped_lib_code() {
        let f = src(
            "crates/core/src/service.rs",
            "use std::sync::Mutex;\nfn go() { std::thread::spawn(|| {}); }\n",
        );
        let hits = a07_facade_only_sync(&f);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits[0].message.contains("`std::sync`"));
        assert!(hits[1].message.contains("`std::thread`"));
        let q = src("crates/knds/src/sharded.rs", "use crossbeam::queue::SegQueue;\n");
        assert_eq!(a07_facade_only_sync(&q).len(), 1);
        let p = src("crates/core/src/service.rs", "use parking_lot::RwLock;\n");
        assert_eq!(a07_facade_only_sync(&p).len(), 1);
    }

    #[test]
    fn a08_fires_on_hash_tables_in_knds_state_files() {
        let f = src(
            "crates/knds/src/workspace.rs",
            "use rustc_hash::FxHashMap;\npub struct W { seen: FxHashSet<u64>, \
             best: std::collections::HashMap<u64, u64> }\n",
        );
        let hits = a08_no_hot_path_hash_tables(&f);
        assert_eq!(hits.len(), 3, "{hits:?}");
        assert!(hits[0].message.contains("`FxHashMap`"));
        assert!(hits.iter().any(|h| h.message.contains("`HashMap`")), "{hits:?}");
        // The D-Radix per-probe build is in scope too.
        let dag = src("crates/dradix/src/dag.rs", "by_concept: FxHashMap<ConceptId, u32>,\n");
        assert_eq!(a08_no_hot_path_hash_tables(&dag).len(), 1);
    }

    #[test]
    fn a08_silent_on_tests_and_out_of_scope_files() {
        let body = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        assert!(a08_no_hot_path_hash_tables(&src("crates/knds/src/util.rs", body)).is_empty());
        assert!(a08_no_hot_path_hash_tables(&src("crates/core/src/service.rs", body)).is_empty());
        let gated = format!("#[cfg(test)]\nmod tests {{ use std::collections::HashSet; {body} }}");
        assert!(a08_no_hot_path_hash_tables(&src("crates/knds/src/engine.rs", &gated)).is_empty());
        let comment = src("crates/knds/src/engine.rs", "// replaced the FxHashMap per-state map\n");
        assert!(a08_no_hot_path_hash_tables(&comment).is_empty());
    }

    #[test]
    fn a09_fires_on_rwlock_in_read_path_files() {
        let body = "use sched::sync::RwLock;\nstruct S { inner: RwLock<Vec<u32>> }\n";
        assert_eq!(a09_lock_free_reads(&src("crates/core/src/service.rs", body)).len(), 2);
        assert_eq!(a09_lock_free_reads(&src("crates/core/src/snapshot.rs", body)).len(), 2);
    }

    #[test]
    fn a09_silent_on_tests_comments_and_out_of_scope_files() {
        let body = "use std::sync::RwLock;\nfn f() { let _ = RwLock::new(0); }";
        // The epoch cell itself (crates/sched) legitimately owns an RwLock.
        assert!(a09_lock_free_reads(&src("crates/sched/src/sync/published.rs", body)).is_empty());
        assert!(a09_lock_free_reads(&src("crates/core/src/engine.rs", body)).is_empty());
        let gated = format!("#[cfg(test)]\nmod tests {{ {body} }}");
        assert!(a09_lock_free_reads(&src("crates/core/src/service.rs", &gated)).is_empty());
        let comment = src("crates/core/src/snapshot.rs", "// one load, never an RwLock\n");
        assert!(a09_lock_free_reads(&comment).is_empty());
    }

    #[test]
    fn a07_silent_on_facade_tests_and_out_of_scope_files() {
        let facade = src(
            "crates/core/src/batch.rs",
            "use sched::sync::{scope, SegQueue};\nfn go() { scope(|_| {}); }\n",
        );
        assert!(a07_facade_only_sync(&facade).is_empty());

        let test_code = src(
            "crates/core/src/service.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { std::thread::scope(|_| {}); }\n}\n",
        );
        assert!(a07_facade_only_sync(&test_code).is_empty());

        let comment =
            src("crates/knds/src/sharded.rs", "// replaces std::thread::scope with the facade\n");
        assert!(a07_facade_only_sync(&comment).is_empty());

        // The facade's own crate (and everything else outside core/knds)
        // is out of scope — it has to touch the real primitives.
        let sched = src("crates/sched/src/sync/real.rs", "use std::sync::Mutex;\n");
        assert!(a07_facade_only_sync(&sched).is_empty());
    }
}
