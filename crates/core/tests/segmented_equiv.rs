//! Equivalence proptest: the segmented, epoch-published index must be
//! indistinguishable from the monolithic overlay source it replaced.
//!
//! [`DynamicSource`] (base CSR with hash-map overlay and tombstone set)
//! is the reference implementation; [`SegmentedSource`] (immutable CSR
//! segments, memtable, tombstone bitset, tiered compaction) is the
//! serving implementation. For arbitrary interleavings of append,
//! delete, seal, and compact, the two must agree bit-for-bit — on the
//! raw [`IndexSource`] contract (postings, forward reads, liveness) and
//! on full `rds`/`sds` query results over the kNDS engine.
//!
//! The capture step additionally models a query racing a publish: a
//! [`SegmentedView`] taken mid-sequence must keep answering against its
//! pinned epoch — identical to an oracle frozen at capture time — while
//! the writer keeps appending, deleting, and physically compacting
//! underneath it.

use cbr_corpus::{Corpus, DocId};
use cbr_index::{CompactionPolicy, IndexSource, MemorySource, SegmentedSource, SegmentedView};
use cbr_knds::{Knds, KndsConfig};
use cbr_ontology::{ConceptId, GeneratorConfig, Ontology, OntologyGenerator};
use concept_rank::DynamicSource;
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::test_runner::{TestCaseError, TestRng};
use std::sync::OnceLock;

/// One writer operation, drawn arbitrarily. Append payloads are indexes
/// into the concept pool (unsorted, possibly duplicated — both sources
/// must normalize identically); deletes pick a doc id modulo the current
/// collection size at apply time.
#[derive(Debug, Clone)]
enum Op {
    Append(Vec<usize>),
    Delete(usize),
    Compact,
    MaybeCompact,
}

/// Weighted op sampler: appends half the time, deletes a quarter, the
/// two compaction flavors an eighth each.
struct OpStrategy;

impl Strategy for OpStrategy {
    type Value = Op;
    fn sample(&self, rng: &mut TestRng) -> Op {
        match rng.below(8) {
            0..=3 => Op::Append((0..rng.below(8)).map(|_| rng.below(1_000) as usize).collect()),
            4 | 5 => Op::Delete(rng.below(1_000) as usize),
            6 => Op::Compact,
            _ => Op::MaybeCompact,
        }
    }
}

struct Fixture {
    ontology: Ontology,
    corpus: Corpus,
    pool: Vec<ConceptId>,
}

/// Shared fixture: one small ontology and bulk corpus for every case.
fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let ontology = OntologyGenerator::new(GeneratorConfig::small(400)).generate();
        let pool: Vec<ConceptId> =
            ontology.concepts().filter(|&c| ontology.depth(c) >= 2).collect();
        assert!(pool.len() >= 32, "fixture pool too small");
        // A dozen bulk docs of 3 concepts each, deterministically spread.
        let docs: Vec<(Vec<ConceptId>, u32)> = (0..12)
            .map(|i| ((0..3).map(|j| pool[(i * 17 + j * 5) % pool.len()]).collect(), 0))
            .collect();
        let corpus = Corpus::from_concept_sets(docs);
        Fixture { ontology, corpus, pool }
    })
}

/// A tight policy so short op sequences still exercise sealing and both
/// compaction paths.
fn tight_policy() -> CompactionPolicy {
    CompactionPolicy { seal_threshold: 3, merge_fanin: 2, small_max_docs: 64 }
}

/// Shadow of the logical collection, for freezing oracles mid-sequence.
#[derive(Clone)]
struct Shadow {
    docs: Vec<Vec<ConceptId>>,
    dead: Vec<bool>,
}

impl Shadow {
    fn oracle(&self, concept_bound: usize) -> DynamicSource {
        let sets: Vec<(Vec<ConceptId>, u32)> = self.docs.iter().map(|c| (c.clone(), 0)).collect();
        let mut oracle = DynamicSource::new(MemorySource::build(
            &Corpus::from_concept_sets(sets),
            concept_bound,
        ));
        for (i, &dead) in self.dead.iter().enumerate() {
            if dead {
                oracle.delete(DocId::from_index(i));
            }
        }
        oracle
    }
}

/// The raw IndexSource contract: postings per concept, forward reads,
/// lengths, liveness, and document count must agree exactly.
fn assert_source_equiv(
    a: &impl IndexSource,
    b: &impl IndexSource,
    pool: &[ConceptId],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.num_docs(), b.num_docs(), "num_docs");
    let (mut pa, mut pb) = (Vec::new(), Vec::new());
    for &c in pool {
        pa.clear();
        pb.clear();
        a.postings(c, &mut pa);
        b.postings(c, &mut pb);
        prop_assert_eq!(&pa, &pb, "postings of {}", c);
    }
    let (mut fa, mut fb) = (Vec::new(), Vec::new());
    for i in 0..a.num_docs() {
        let d = DocId::from_index(i);
        prop_assert_eq!(a.is_live(d), b.is_live(d), "liveness of {}", d);
        // Forward reads are only defined for live documents: physical
        // compaction drops a tombstoned payload (length 0) while the
        // monolithic overlay keeps it — both are correct, since nothing
        // on the query path reads a dead document.
        if !a.is_live(d) {
            continue;
        }
        prop_assert_eq!(a.doc_len(d), b.doc_len(d), "doc_len of {}", d);
        fa.clear();
        fb.clear();
        a.doc_concepts(d, &mut fa);
        b.doc_concepts(d, &mut fb);
        prop_assert_eq!(&fa, &fb, "concepts of {}", d);
    }
    Ok(())
}

/// Full-engine equivalence: rds and sds over both sources return
/// bit-identical rankings (same docs, same distances, same order).
fn assert_query_equiv(
    ontology: &Ontology,
    a: &impl IndexSource,
    b: &impl IndexSource,
    shadow: &Shadow,
    pool: &[ConceptId],
    qseed: u64,
) -> Result<(), TestCaseError> {
    let cfg = KndsConfig::default().with_error_threshold(0.5);
    let ka = Knds::new(ontology, a, cfg.clone());
    let kb = Knds::new(ontology, b, cfg);
    // RDS: a few deterministic concept queries from the pool.
    for qi in 0..4u64 {
        let s = qseed.wrapping_add(qi.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut q: Vec<ConceptId> =
            (0..3).map(|j| pool[((s >> (j * 8)) as usize) % pool.len()]).collect();
        q.sort_unstable();
        q.dedup();
        let (ra, rb) = (ka.rds(&q, 5), kb.rds(&q, 5));
        prop_assert_eq!(&ra.results, &rb.results, "rds({:?})", &q);
    }
    // SDS: the first few live, non-empty documents as query docs.
    let mut tried = 0;
    for (i, concepts) in shadow.docs.iter().enumerate() {
        if tried >= 3 {
            break;
        }
        if shadow.dead[i] || concepts.is_empty() {
            continue;
        }
        tried += 1;
        let (ra, rb) = (ka.sds(concepts, 5), kb.sds(concepts, 5));
        prop_assert_eq!(&ra.results, &rb.results, "sds(doc {})", i);
    }
    Ok(())
}

fn run_case(ops: Vec<Op>, qseed: u64) -> Result<(), TestCaseError> {
    let fx = fixture();
    let concept_bound = fx.ontology.len();
    let mut seg = SegmentedSource::from_corpus(&fx.corpus, tight_policy());
    let mut mono = DynamicSource::new(MemorySource::build(&fx.corpus, concept_bound));
    let mut shadow = Shadow {
        docs: fx.corpus.documents().map(|d| d.concepts().to_vec()).collect(),
        dead: vec![false; fx.corpus.len()],
    };
    // A view captured mid-sequence, with the shadow frozen alongside it.
    let mut captured: Option<(SegmentedView, Shadow)> = None;
    let capture_at = ops.len() / 2;

    for (i, op) in ops.into_iter().enumerate() {
        match op {
            Op::Append(picks) => {
                let concepts: Vec<ConceptId> =
                    picks.iter().map(|&p| fx.pool[p % fx.pool.len()]).collect();
                let a = seg.append(concepts.clone());
                let b = mono.append(concepts.clone());
                prop_assert_eq!(a, b, "append ids diverged");
                let mut normalized = concepts;
                cbr_corpus::normalize_concepts(&mut normalized);
                shadow.docs.push(normalized);
                shadow.dead.push(false);
            }
            Op::Delete(pick) => {
                // Deliberately may hit dead docs (both must report false)
                // and, via the +3, ids just past the end.
                let id = DocId::from_index(pick % (shadow.docs.len() + 3));
                let a = seg.delete(id);
                let b = mono.delete(id);
                prop_assert_eq!(a, b, "delete({}) diverged", id);
                if a {
                    shadow.dead[id.index()] = true;
                }
            }
            // Compaction is segmented-only: physically rewrites segments,
            // must not change observable contents.
            Op::Compact => {
                seg.seal();
                seg.compact_all();
            }
            Op::MaybeCompact => {
                seg.maybe_compact();
            }
        }
        if i == capture_at {
            captured = Some((seg.view(), shadow.clone()));
        }
    }

    // Final states agree on everything.
    let view = seg.view();
    assert_source_equiv(&view, &mono, &fx.pool)?;
    assert_query_equiv(&fx.ontology, &view, &mono, &shadow, &fx.pool, qseed)?;

    // The captured view still answers against its pinned epoch, even
    // though appends, deletes, and physical compactions have since been
    // published past it.
    if let Some((old_view, old_shadow)) = captured {
        let oracle = old_shadow.oracle(concept_bound);
        assert_source_equiv(&old_view, &oracle, &fx.pool)?;
        assert_query_equiv(&fx.ontology, &old_view, &oracle, &old_shadow, &fx.pool, qseed)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn segmented_source_is_equivalent_to_the_monolithic_oracle(
        ops in vec(OpStrategy, 1..48),
        qseed in any::<u64>(),
    ) {
        run_case(ops, qseed)?;
    }
}

/// A directed (non-random) case pinning the exact scenario from the
/// issue: a query racing a compaction-published snapshot sees its pinned
/// epoch bit-for-bit.
#[test]
fn view_pinned_before_compaction_is_unaffected_by_it() {
    let fx = fixture();
    let mut seg = SegmentedSource::from_corpus(&fx.corpus, tight_policy());
    for i in 0..10 {
        seg.append(vec![fx.pool[i * 3 % fx.pool.len()], fx.pool[i % fx.pool.len()]]);
    }
    seg.delete(DocId(2));
    let pinned = seg.view();
    let shadow = Shadow {
        docs: {
            let mut docs: Vec<Vec<ConceptId>> =
                fx.corpus.documents().map(|d| d.concepts().to_vec()).collect();
            for i in 0..10usize {
                let mut c = vec![fx.pool[i * 3 % fx.pool.len()], fx.pool[i % fx.pool.len()]];
                cbr_corpus::normalize_concepts(&mut c);
                docs.push(c);
            }
            docs
        },
        dead: {
            let mut dead = vec![false; fx.corpus.len() + 10];
            dead[2] = true;
            dead
        },
    };
    // Mutate and physically compact behind the pinned view.
    seg.delete(DocId(5));
    for i in 0..6 {
        seg.append(vec![fx.pool[(i * 7 + 1) % fx.pool.len()]]);
    }
    seg.seal();
    assert!(seg.compact_all(), "tombstones force a physical rewrite");
    let oracle = shadow.oracle(fx.ontology.len());
    assert_source_equiv(&pinned, &oracle, &fx.pool).unwrap();
    assert_query_equiv(&fx.ontology, &pinned, &oracle, &shadow, &fx.pool, 0xD00D).unwrap();
}
