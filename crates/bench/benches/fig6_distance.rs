//! Criterion bench for Figure 6: document-document distance calculation,
//! BL (quadratic pairwise baseline) vs DRC (D-Radix, n·log n), as a
//! function of the query-document size nq, on both collection shapes.

use cbr_bench::{Scale, Workbench};
use cbr_dradix::{brute, Drc};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_fig6(c: &mut Criterion) {
    let wb = Workbench::build(Scale::micro());
    let mut drc = Drc::new(&wb.ontology);
    let _ = wb.ontology.path_table(); // materialize outside the timings

    for coll in &wb.collections {
        let mut group = c.benchmark_group(format!("fig6/{}", coll.name));
        group.sample_size(10).measurement_time(Duration::from_secs(2));
        let target = coll
            .corpus
            .documents()
            .find(|d| d.num_concepts() > 0)
            .expect("non-empty doc")
            .concepts()
            .to_vec();
        for nq in [1usize, 5, 10, 30] {
            let q = coll.query_documents(1, nq, 42).remove(0);
            group.bench_with_input(BenchmarkId::new("BL", nq), &q, |b, q| {
                b.iter(|| {
                    black_box(brute::document_document_distance(
                        &wb.ontology,
                        black_box(&target),
                        black_box(q),
                    ))
                })
            });
            group.bench_with_input(BenchmarkId::new("DRC", nq), &q, |b, q| {
                b.iter(|| {
                    black_box(drc.document_document_distance(black_box(&target), black_box(q)))
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
