//! Offline subset of the `proptest` crate.
//!
//! The sandbox has no registry access, so this crate reimplements the
//! slice of proptest the workspace's property tests use: the `proptest!`
//! macro, `prop_assert!`/`prop_assert_eq!`, range/collection/option/`any`
//! strategies, and `ProptestConfig::with_cases`. Sampling is purely
//! random-search (no shrinking) and deterministic: every test function
//! regenerates the same cases on every run, so failures reproduce
//! immediately. Drop the `[patch.crates-io]` entry to use the real crate.

pub mod test_runner {
    use std::fmt;

    /// Runner configuration (subset of `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }

    /// A failed property assertion.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic xoshiro256** generator driving strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Fixed-seed construction: property tests replay identically on
        /// every run.
        pub fn deterministic() -> Self {
            let mut sm = 0x3A8F_05C5_u64;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            TestRng { s }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        #[inline]
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values (subset of `proptest::strategy::Strategy`;
    /// sampling only, no shrink tree).
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty strategy range");
            // Hit the closed upper bound occasionally so boundary behaviour
            // (e.g. εθ = 1.0) is genuinely exercised.
            match rng.below(16) {
                0 => lo,
                1 => hi,
                _ => lo + rng.unit_f64() * (hi - lo),
            }
        }
    }

    /// String literals act as regex strategies in proptest; this subset
    /// interprets any literal as "printable ASCII, up to the `{_,N}` bound
    /// if one is present, else up to 16 chars".
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let max = self
                .rsplit_once(',')
                .and_then(|(_, tail)| tail.strip_suffix('}'))
                .and_then(|n| n.parse::<u64>().ok())
                .unwrap_or(16);
            let len = rng.below(max + 1);
            (0..len).map(|_| (0x20 + rng.below(0x5F) as u8) as char).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_sample(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Default, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`, `None` one time in four.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    /// `prop::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Namespace alias matching `proptest::prelude::prop::*`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            Ok(())
                        })();
                    if let Err(e) = outcome {
                        panic!(
                            "property failed on deterministic case {case}/{}: {e}",
                            config.cases
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $( $(#[$meta])* fn $name( $($arg in $strat),+ ) $body )*
        }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left == right`\n  left: {l:?}\n right: {r:?}"),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {l:?}\n right: {r:?}", format!($($fmt)+)),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0.0f64..=1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y), "y out of bounds: {}", y);
        }

        #[test]
        fn collections_respect_length(v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn strings_and_options(s in ".{0,40}", o in prop::option::of(any::<bool>())) {
            prop_assert!(s.chars().count() <= 40);
            let _ = o;
            prop_assert_eq!(s.len(), s.len());
        }
    }

    #[test]
    fn deterministic_replay() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic();
        let mut b = crate::test_runner::TestRng::deterministic();
        for _ in 0..32 {
            assert_eq!((0u64..1000).sample(&mut a), (0u64..1000).sample(&mut b));
        }
    }
}
