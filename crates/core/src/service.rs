//! A concurrent engine handle for the point-of-care scenario.
//!
//! The paper's motivating deployment interleaves reads (clinicians
//! querying) with writes (new EMRs arriving) — "when a new patient arrives
//! at the point-of-care, we can instantly add his or her EMR to our
//! database" (Section 1). [`SharedEngine`] wraps an [`Engine`] in a
//! [`RwLock`]: queries run concurrently under read locks,
//! appends take a brief write lock (the dynamic overlay makes them
//! `O(|concepts|)`), and clones of the handle share one engine.
//!
//! Query scratch never sits under the lock: the handle keeps a lock-free
//! pool of [`KndsWorkspace`]s (a [`SegQueue`]) beside the
//! `RwLock`. Each query pops a workspace (or makes one on a cold start),
//! runs through [`Engine::rds_with`]/[`Engine::sds_with`], and pushes it
//! back — so concurrent readers each get their own warm buffers with no
//! contention, and steady-state queries allocate nothing. A workspace held
//! during a panic simply never returns to the pool; those that do return
//! are always clean.
//!
//! All synchronization goes through the [`sched::sync`] facade, so the
//! `cbr-sched` model checker can exhaustively explore this module's
//! interleavings; in normal builds the facade compiles straight down to
//! the real primitives.

use crate::engine::{Engine, EngineError};
use cbr_corpus::DocId;
use cbr_knds::{KndsWorkspace, QueryResult};
use cbr_ontology::ConceptId;
use sched::sync::{Arc, RwLock, SegQueue};

/// A cloneable, thread-safe handle to a shared [`Engine`].
#[derive(Debug, Clone)]
pub struct SharedEngine {
    inner: Arc<RwLock<Engine>>,
    /// Lock-free pool of per-query workspaces, shared by all clones.
    pool: Arc<SegQueue<KndsWorkspace>>,
}

impl SharedEngine {
    /// Wraps an engine.
    pub fn new(engine: Engine) -> SharedEngine {
        SharedEngine { inner: Arc::new(RwLock::new(engine)), pool: Arc::new(SegQueue::pooled()) }
    }

    /// Runs `f` with a pooled workspace; the workspace returns to the pool
    /// afterwards (unless `f` panics, in which case it is dropped). The
    /// workspace's dense tables are re-reserved against the engine's
    /// current size first, so pooled workspaces survive index growth
    /// between queries without ever growing mid-query.
    fn with_workspace<R>(&self, f: impl FnOnce(&mut KndsWorkspace) -> R) -> R {
        let mut ws = self.pool.pop().unwrap_or_default();
        let (concepts, docs) = self.inner.read().workspace_hint();
        ws.reserve(concepts, docs);
        let r = f(&mut ws);
        self.pool.push(ws);
        r
    }

    /// Number of idle workspaces currently pooled.
    pub fn pooled_workspaces(&self) -> usize {
        self.pool.len()
    }

    /// Concurrent RDS query (read lock; pooled workspace).
    pub fn rds(&self, query: &[ConceptId], k: usize) -> Result<QueryResult, EngineError> {
        self.with_workspace(|ws| self.inner.read().rds_with(ws, query, k))
    }

    /// Concurrent SDS query (read lock; pooled workspace).
    pub fn sds(&self, query_doc: &[ConceptId], k: usize) -> Result<QueryResult, EngineError> {
        self.with_workspace(|ws| self.inner.read().sds_with(ws, query_doc, k))
    }

    /// Concurrent SDS query with a collection document (read lock; pooled
    /// workspace).
    pub fn sds_by_doc(&self, doc: DocId, k: usize) -> Result<QueryResult, EngineError> {
        self.with_workspace(|ws| self.inner.read().sds_by_doc_with(ws, doc, k))
    }

    /// Appends a document (write lock); immediately visible to queries.
    pub fn add_document(&self, concepts: Vec<ConceptId>) -> DocId {
        self.inner.write().add_document(concepts)
    }

    /// Total documents currently searchable.
    pub fn num_docs(&self) -> usize {
        self.inner.read().num_docs()
    }

    /// Runs `f` with shared access to the engine (for reads not covered by
    /// the convenience methods).
    pub fn with_engine<R>(&self, f: impl FnOnce(&Engine) -> R) -> R {
        f(&self.inner.read())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;
    use cbr_corpus::{CorpusGenerator, CorpusProfile};
    use cbr_ontology::{GeneratorConfig, OntologyGenerator};

    fn shared() -> (SharedEngine, Vec<ConceptId>) {
        let ont = OntologyGenerator::new(GeneratorConfig::small(1_000)).generate();
        let corpus = CorpusGenerator::new(
            &ont,
            CorpusProfile::radio_like().with_num_docs(50).with_mean_concepts(8.0),
        )
        .generate();
        let engine = EngineBuilder::new().build(ont, corpus);
        let q = engine
            .corpus()
            .documents()
            .find(|d| d.num_concepts() >= 2)
            .map(|d| d.concepts()[..2].to_vec())
            .unwrap();
        (SharedEngine::new(engine), q)
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let (shared, q) = shared();
        let before = shared.num_docs();
        std::thread::scope(|scope| {
            // Readers hammer queries while a writer appends documents.
            for _ in 0..4 {
                let s = shared.clone();
                let q = q.clone();
                scope.spawn(move || {
                    for _ in 0..20 {
                        let r = s.rds(&q, 3).unwrap();
                        assert!(!r.results.is_empty());
                    }
                });
            }
            let s = shared.clone();
            let q = q.clone();
            scope.spawn(move || {
                for _ in 0..10 {
                    s.add_document(q.clone());
                }
            });
        });
        assert_eq!(shared.num_docs(), before + 10);
        // The appended exact matches dominate the ranking now.
        let r = shared.rds(&q, 1).unwrap();
        assert_eq!(r.results[0].distance, 0.0);
    }

    #[test]
    fn workspace_pool_recycles_across_queries() {
        let (shared, q) = shared();
        assert_eq!(shared.pooled_workspaces(), 0);
        let cold = shared.rds(&q, 3).unwrap();
        assert_eq!(cold.metrics.workspace_reused, 0, "pool starts empty");
        assert_eq!(shared.pooled_workspaces(), 1, "workspace returned to pool");
        // Sequential queries — including via a clone — reuse the single
        // pooled workspace instead of growing the pool.
        let warm = shared.clone().sds(&q, 3).unwrap();
        assert_eq!(warm.metrics.workspace_reused, 1, "pooled workspace is warm");
        assert_eq!(shared.pooled_workspaces(), 1);
    }

    #[test]
    fn pool_never_exceeds_peak_concurrency() {
        let (shared, q) = shared();
        const THREADS: usize = 4;
        const ROUNDS: usize = 5;
        let barrier = std::sync::Barrier::new(THREADS);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let s = shared.clone();
                let q = q.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    for _ in 0..ROUNDS {
                        // All threads hold a workspace simultaneously, so
                        // the pool is drained at the barrier and refilled
                        // after — it can never grow past THREADS.
                        barrier.wait();
                        let r = s.rds(&q, 3).unwrap();
                        assert!(!r.results.is_empty());
                    }
                });
            }
        });
        let pooled = shared.pooled_workspaces();
        assert!(pooled <= THREADS, "pool leaked: {pooled} workspaces for {THREADS} threads");
        assert!(pooled >= 1, "at least one workspace must have been returned");
    }

    #[test]
    fn panicking_query_drops_its_workspace() {
        let (shared, q) = shared();
        shared.rds(&q, 3).unwrap();
        assert_eq!(shared.pooled_workspaces(), 1);
        // k = 0 trips the kNDS precondition assert while the pooled
        // workspace is checked out; it must be dropped, not returned dirty.
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = shared.rds(&q, 0);
        }));
        assert!(panicked.is_err(), "k = 0 must panic");
        assert_eq!(shared.pooled_workspaces(), 0, "poisoned workspace returned to pool");
        // Service still healthy: the next query cold-starts a fresh one.
        let r = shared.rds(&q, 3).unwrap();
        assert_eq!(r.metrics.workspace_reused, 0, "fresh workspace after poison");
        assert!(!r.results.is_empty());
        assert_eq!(shared.pooled_workspaces(), 1);
    }

    #[test]
    fn with_engine_exposes_reads() {
        let (shared, _q) = shared();
        let n = shared.with_engine(|e| e.ontology().len());
        assert_eq!(n, 1_000);
    }

    #[test]
    fn clones_share_state() {
        let (shared, q) = shared();
        let other = shared.clone();
        let id = shared.add_document(q);
        assert!(other.num_docs() > id.index());
        assert_eq!(other.num_docs(), shared.num_docs());
    }
}
