//! Weighted-edge kNDS — the Section 7 future-work variant.
//!
//! The paper closes by asking "how non is-a ontological edges can be
//! incorporated into the similarity function and how this would affect the
//! algorithms' performance". With per-edge integer weights
//! ([`cbr_ontology::EdgeWeights`]) the level-synchronized BFS of the
//! unit-weight engine becomes a **bucketed Dijkstra**: states pop in
//! non-decreasing accumulated weight, one bucket per integer distance.
//! All the Algorithm 2 machinery carries over —
//!
//! * coverage at first (minimal-distance) pop gives exact `Md`/`M'd`
//!   entries, because pops are globally distance-ordered;
//! * after finishing bucket `d`, every uncovered term has distance at
//!   least `d + 1` (weights are ≥ 1), so the Equation 6/8 lower bounds and
//!   the Equation 9 error estimate apply verbatim;
//! * termination is still `D⁻ ≥ D⁺ₖ`, so results are exact for any `εθ`.
//!
//! Push-time state deduplication (safe with unit steps) is replaced by the
//! classic lazy-deletion rule: a state re-pushed with a smaller tentative
//! distance supersedes the old entry, and stale pops are skipped.
//!
//! Like the unit-weight engine, all per-query state (candidate table,
//! Dijkstra buckets, coverage maps, DRC scratch) lives in a borrowed
//! [`KndsWorkspace`]; use the `*_with` entry points to reuse one across
//! queries.

use crate::config::KndsConfig;
use crate::engine::{Candidate, Kind, QueryResult, RankedDoc, State};
use crate::metrics::QueryMetrics;
use crate::util::TopK;
use crate::workspace::KndsWorkspace;
use cbr_corpus::DocId;
use cbr_dradix::Drc;
use cbr_index::{packing, IndexSource};
use cbr_ontology::{ConceptId, EdgeWeights, Ontology};
use std::time::Instant;

/// Top-k search under weighted valid-path distances.
#[derive(Debug)]
pub struct WeightedKnds<'a, S: IndexSource> {
    ontology: &'a Ontology,
    weights: &'a EdgeWeights,
    source: &'a S,
    config: KndsConfig,
}

impl<'a, S: IndexSource> WeightedKnds<'a, S> {
    /// Creates the weighted engine.
    pub fn new(
        ontology: &'a Ontology,
        weights: &'a EdgeWeights,
        source: &'a S,
        config: KndsConfig,
    ) -> Self {
        WeightedKnds { ontology, weights, source, config }
    }

    /// Weighted RDS: top-k under `Ddq` with weighted concept distances.
    pub fn rds(&self, query: &[ConceptId], k: usize) -> QueryResult {
        let mut ws = KndsWorkspace::new();
        self.rds_with(&mut ws, query, k)
    }

    /// [`WeightedKnds::rds`] over a caller-owned workspace; see
    /// [`Knds::rds_with`](crate::Knds::rds_with).
    pub fn rds_with(&self, ws: &mut KndsWorkspace, query: &[ConceptId], k: usize) -> QueryResult {
        self.run(ws, Kind::Rds, query, k)
    }

    /// Weighted SDS: top-k under the symmetric `Ddd` with weighted
    /// concept distances.
    pub fn sds(&self, query_doc: &[ConceptId], k: usize) -> QueryResult {
        let mut ws = KndsWorkspace::new();
        self.sds_with(&mut ws, query_doc, k)
    }

    /// [`WeightedKnds::sds`] over a caller-owned workspace; see
    /// [`Knds::rds_with`](crate::Knds::rds_with).
    pub fn sds_with(
        &self,
        ws: &mut KndsWorkspace,
        query_doc: &[ConceptId],
        k: usize,
    ) -> QueryResult {
        self.run(ws, Kind::Sds, query_doc, k)
    }

    fn run(
        &self,
        ws: &mut KndsWorkspace,
        kind: Kind,
        query: &[ConceptId],
        k: usize,
    ) -> QueryResult {
        assert!(k > 0, "k must be positive");
        let reused = ws.begin();
        let mut q = std::mem::take(&mut ws.query);
        crate::util::normalize_query_into(query, &mut q);
        assert!(!q.is_empty(), "query must contain at least one concept");
        // Dense-table epoch for this query; the weighted engine needs the
        // Dijkstra tentative-distance table.
        let rolled = ws.dense.begin_query(
            q.len(),
            self.ontology.len(),
            self.source.num_docs(),
            kind == Kind::Sds,
            true,
        );

        let drc = Drc::with_weights(self.ontology, self.weights).with_scratch(ws.take_dag());
        let mut search = WeightedSearch {
            ont: self.ontology,
            weights: self.weights,
            source: self.source,
            drc,
            config: &self.config,
            kind,
            nq: q.len(),
            query: q,
            ws,
            heap: TopK::new(k),
            metrics: QueryMetrics { epoch_rollover: rolled as usize, ..QueryMetrics::default() },
        };
        let mut result = search.run();

        let WeightedSearch { drc, mut query, ws, .. } = search;
        query.clear();
        ws.query = query;
        ws.restore_dag(drc.into_scratch());
        ws.finish();
        result.metrics.workspace_reused = reused as usize;
        result.metrics.workspace_bytes = ws.footprint_bytes();
        result.metrics.table_bytes = ws.dense.footprint_bytes();
        result
    }
}

struct WeightedSearch<'a, 'w, S: IndexSource> {
    ont: &'a Ontology,
    weights: &'a EdgeWeights,
    source: &'a S,
    drc: Drc<'a>,
    config: &'a KndsConfig,
    kind: Kind,
    query: Vec<ConceptId>,
    nq: usize,
    /// Per-query dense tables and buffers, borrowed for this query (the
    /// weighted engine uses the tentative-distance table and `buckets`
    /// where the unit-weight engine uses the visited bitset and the
    /// frontier pair).
    ws: &'w mut KndsWorkspace,
    heap: TopK,
    metrics: QueryMetrics,
}

impl<S: IndexSource> WeightedSearch<'_, '_, S> {
    fn run(&mut self) -> QueryResult {
        // Distance-indexed buckets of states. Buckets grow on demand; both
        // the outer Vec and every inner Vec are retained by the workspace
        // across queries.
        let mut buckets = std::mem::take(&mut self.ws.buckets);
        if buckets.is_empty() {
            buckets.push(Vec::new());
        }
        if let Some(seed) = buckets.first_mut() {
            for (i, &c) in self.query.iter().enumerate() {
                let origin = packing::narrow_u32(i);
                self.ws.dense.improve_best(origin, c, false, 0);
                // bound: sized — one seed entry per query concept
                seed.push((origin, c, false));
            }
        }

        let mut d: u32 = 0;
        // cplx: bound depth — one bucket per turn, spanning the valid-path diameter; cplx: counter buckets
        loop {
            #[cfg(feature = "counters")]
            crate::counters::bump_buckets();
            // --- process bucket `d` (traversal bucket) ----------------------
            let t0 = Instant::now();
            let mut forced = false;
            let mut current = buckets.get_mut(d as usize).map(std::mem::take).unwrap_or_default();
            for &state in &current {
                let (origin, node, descending) = state;
                // Lazy deletion: skip stale entries.
                if self.ws.dense.best_dist(origin, node, descending).is_some_and(|best| best < d) {
                    continue;
                }
                self.metrics.nodes_visited += 1;
                self.apply_coverage(origin, node, d);
                self.expand(state, d, descending, &mut buckets);
            }
            // Hand the drained bucket's capacity back (expansion only ever
            // pushes past `d`, so the slot is final for this query).
            current.clear();
            if let Some(slot) = buckets.get_mut(d as usize) {
                *slot = current;
            }
            let frontier_size: usize = buckets.iter().map(|b| b.len()).sum();
            if frontier_size > self.config.queue_cap {
                forced = true;
                self.metrics.forced_rounds += 1;
            }
            self.metrics.traversal += t0.elapsed();
            self.metrics.levels += 1;

            // --- examination -------------------------------------------------
            let min_unexamined = self.examine(d, forced);

            // --- termination -------------------------------------------------
            let d_minus = min_unexamined.min(self.unseen_bound(d));
            if self.config.progressive {
                let final_now = self.heap.iter().filter(|&(_, dd)| dd <= d_minus).count();
                self.metrics.progressive_results = self.metrics.progressive_results.max(final_now);
            }
            if self.heap.is_full() && d_minus >= self.heap.threshold() {
                break;
            }
            // Advance to the next non-empty bucket.
            let next = buckets
                .iter()
                .enumerate()
                .skip(d as usize + 1)
                .find(|(_, b)| !b.is_empty())
                .map(|(i, _)| i);
            match next {
                Some(i) => d = packing::narrow_u32(i),
                None => {
                    self.finalize_exhausted();
                    break;
                }
            }
        }
        self.ws.buckets = buckets;

        self.metrics.candidates_seen = self.ws.dense.cand.len();
        let results = std::mem::replace(&mut self.heap, TopK::new(1))
            .into_sorted()
            .into_iter()
            .map(|(doc, distance)| RankedDoc { doc, distance })
            .collect();
        QueryResult { results, metrics: std::mem::take(&mut self.metrics) }
    }

    // cplx: bound nq*post — amortized: mark_pair admits each (origin, concept)
    // pair once per query, so the posting scans sum to nq·Σ|postings|
    fn apply_coverage(&mut self, origin: u32, node: ConceptId, dist: u32) {
        let fwd_new = self.ws.dense.mark_pair(origin, node);
        let rev_new = self.kind == Kind::Sds && self.ws.dense.touch_first(node);
        if !fwd_new && !rev_new {
            return;
        }
        let t = Instant::now();
        self.ws.postings_buf.clear();
        self.source.postings(node, &mut self.ws.postings_buf);
        self.metrics.io += t.elapsed();

        let postings = std::mem::take(&mut self.ws.postings_buf);
        for &doc in &postings {
            let slot = match self.ws.dense.slot_of(doc) {
                Some(slot) => {
                    self.metrics.dense_hits += 1;
                    slot
                }
                None => {
                    let len = if self.kind == Kind::Sds {
                        packing::narrow_u32(self.source.doc_len(doc))
                    } else {
                        0
                    };
                    self.ws.dense.insert_candidate(doc, len)
                }
            };
            self.ws.dense.apply_to_candidate(slot, origin, dist, fwd_new, rev_new);
        }
        self.ws.postings_buf = postings;
    }

    fn expand(&mut self, state: State, d: u32, descending: bool, buckets: &mut Vec<Vec<State>>) {
        let (origin, node, _) = state;
        if !descending {
            for &p in self.ont.parents(node) {
                let Some(w) = self.weights.weight(self.ont, p, node) else {
                    debug_assert!(false, "parent adjacency is symmetric");
                    continue;
                };
                self.push(buckets, (origin, p, false), d + w);
            }
        }
        for (pos, &child) in self.ont.children(node).iter().enumerate() {
            let w = self.weights.weight_at(node, pos);
            self.push(buckets, (origin, child, true), d + w);
        }
    }

    // Bucket growth is retained by the workspace across queries.
    // flow: workspace-fed
    fn push(&mut self, buckets: &mut Vec<Vec<State>>, state: State, dist: u32) {
        if self.config.dedup_visits {
            // Dijkstra relaxation: only keep strictly improving pushes.
            let (origin, node, desc) = state;
            if !self.ws.dense.improve_best(origin, node, desc, dist) {
                self.metrics.dense_hits += 1;
                return;
            }
        }
        if buckets.len() <= dist as usize {
            buckets.resize(dist as usize + 1, Vec::new());
        }
        if let Some(bucket) = buckets.get_mut(dist as usize) {
            bucket.push(state);
        }
    }

    fn examine(&mut self, d: u32, forced: bool) -> f64 {
        let t0 = Instant::now();
        let mut order = std::mem::take(&mut self.ws.order);
        order.clear();
        order.extend(
            self.ws
                .dense
                .cand_docs
                .iter()
                .zip(self.ws.dense.cand.iter())
                .filter(|(_, c)| !c.examined)
                .map(|(&doc, c)| (self.lower_bound(c, d), doc)),
        );
        order.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        self.metrics.traversal += t0.elapsed();

        let mut min_unexamined = f64::INFINITY;
        for &(lb, doc) in &order {
            if self.heap.is_full() && lb >= self.heap.threshold() {
                min_unexamined = lb;
                break;
            }
            let Some(slot) = self.ws.dense.slot_of(doc) else {
                debug_assert!(false, "examined doc {doc} has no candidate");
                continue;
            };
            // Degraded result on a missing row: "no error" forces exact
            // examination, which is always sound.
            let eps = self.ws.dense.candidate(slot).map_or(0.0, |c| self.error_estimate(c, lb));
            if !forced && eps > self.config.error_threshold {
                min_unexamined = lb;
                break;
            }
            let exact = self.exact_distance(doc, slot);
            if let Some(cand) = self.ws.dense.candidate_mut(slot) {
                cand.examined = true;
            }
            self.metrics.docs_examined += 1;
            self.heap.offer(doc, exact);
        }
        order.clear();
        self.ws.order = order;
        min_unexamined
    }

    // bound: proven — nq ≥ 1 (asserted at query entry) and every counter is
    // bounded by nq · max path weight, far below the 2^53 f64 mantissa
    fn lower_bound(&self, c: &Candidate, d: u32) -> f64 {
        let next = (d + 1) as u64;
        let fwd = c.partial + (self.nq as u64 - c.covered as u64) * next;
        match self.kind {
            Kind::Rds => fwd as f64,
            Kind::Sds => {
                let rev = c.rev_sum + (c.doc_len as u64 - c.rev_covered as u64) * next;
                fwd as f64 / self.nq as f64 + rev as f64 / c.doc_len.max(1) as f64
            }
        }
    }

    // bound: proven — nq ≥ 1 (asserted at query entry); partial and rev_sum
    // are sums of ≤ nq·doc_len edge weights, far below the 2^53 f64 mantissa
    fn partial_distance(&self, c: &Candidate) -> f64 {
        match self.kind {
            Kind::Rds => c.partial as f64,
            Kind::Sds => {
                c.partial as f64 / self.nq as f64 + c.rev_sum as f64 / c.doc_len.max(1) as f64
            }
        }
    }

    fn error_estimate(&self, c: &Candidate, lb: f64) -> f64 {
        if lb <= 0.0 {
            return 0.0;
        }
        1.0 - self.partial_distance(c) / lb
    }

    // bound: proven — nq is the query concept count, far below 2^53
    fn unseen_bound(&self, d: u32) -> f64 {
        let next = (d + 1) as f64;
        match self.kind {
            Kind::Rds => self.nq as f64 * next,
            Kind::Sds => 2.0 * next,
        }
    }

    fn exact_distance(&mut self, doc: DocId, slot: usize) -> f64 {
        let Some(c) = self.ws.dense.candidate(slot) else {
            debug_assert!(false, "exact distance for unseen doc {doc}");
            return f64::INFINITY;
        };
        let complete = match self.kind {
            Kind::Rds => c.covered as usize == self.nq,
            Kind::Sds => c.covered as usize == self.nq && c.rev_covered == c.doc_len,
        };
        if complete {
            self.metrics.exact_from_partial += 1;
            return self.partial_distance(c);
        }
        let t = Instant::now();
        self.ws.concepts_buf.clear();
        self.source.doc_concepts(doc, &mut self.ws.concepts_buf);
        self.metrics.io += t.elapsed();

        let t = Instant::now();
        let exact = match self.kind {
            Kind::Rds => {
                let dd = self.drc.document_query_distance(&self.ws.concepts_buf, &self.query);
                if dd == cbr_dradix::INFINITE {
                    f64::INFINITY
                } else {
                    dd as f64
                }
            }
            Kind::Sds => self.drc.document_document_distance(&self.ws.concepts_buf, &self.query),
        };
        self.metrics.distance_calc += t.elapsed();
        self.metrics.drc_calls += 1;
        exact
    }

    fn finalize_exhausted(&mut self) {
        let t0 = Instant::now();
        let mut docs = std::mem::take(&mut self.ws.docs_buf);
        docs.clear();
        docs.extend(
            self.ws
                .dense
                .cand_docs
                .iter()
                .zip(self.ws.dense.cand.iter())
                .filter(|(_, c)| !c.examined)
                .map(|(&doc, _)| doc),
        );
        for &doc in &docs {
            let Some(slot) = self.ws.dense.slot_of(doc) else {
                debug_assert!(false, "exhausted doc {doc} has no candidate");
                continue;
            };
            let Some(exact) = self.ws.dense.candidate(slot).map(|c| {
                debug_assert_eq!(c.covered as usize, self.nq, "exhaustion implies full coverage");
                self.partial_distance(c)
            }) else {
                continue;
            };
            self.metrics.exact_from_partial += 1;
            self.metrics.docs_examined += 1;
            if let Some(c) = self.ws.dense.candidate_mut(slot) {
                c.examined = true;
            }
            self.heap.offer(doc, exact);
        }
        docs.clear();
        self.ws.docs_buf = docs;
        if !self.heap.is_full() {
            for i in 0..self.source.num_docs() {
                let doc = DocId::from_index(i);
                if self.ws.dense.slot_of(doc).is_none() && self.source.is_live(doc) {
                    self.heap.offer(doc, f64::INFINITY);
                }
            }
        }
        self.metrics.distance_calc += t0.elapsed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_corpus::{Corpus, CorpusGenerator, CorpusProfile};
    use cbr_index::MemorySource;
    use cbr_ontology::{fixture, weighted, GeneratorConfig, OntologyGenerator};

    /// Exhaustive weighted baseline for verification.
    fn weighted_scan_rds(
        ont: &Ontology,
        w: &EdgeWeights,
        source: &MemorySource,
        q: &[ConceptId],
        k: usize,
    ) -> Vec<f64> {
        let mut dists: Vec<f64> = (0..source.num_docs())
            .map(|i| {
                let mut buf = Vec::new();
                source.doc_concepts(DocId::from_index(i), &mut buf);
                let d = weighted::document_query_distance(ont, w, &buf, q);
                if d == u64::MAX {
                    f64::INFINITY
                } else {
                    d as f64
                }
            })
            .collect();
        dists.sort_by(f64::total_cmp);
        dists.truncate(k);
        dists
    }

    fn weighted_scan_sds(
        ont: &Ontology,
        w: &EdgeWeights,
        source: &MemorySource,
        q: &[ConceptId],
        k: usize,
    ) -> Vec<f64> {
        let mut dists: Vec<f64> = (0..source.num_docs())
            .map(|i| {
                let mut buf = Vec::new();
                source.doc_concepts(DocId::from_index(i), &mut buf);
                weighted::document_document_distance(ont, w, &buf, q)
            })
            .collect();
        dists.sort_by(f64::total_cmp);
        dists.truncate(k);
        dists
    }

    #[test]
    fn unit_weights_match_the_unweighted_engine() {
        let fig = fixture::figure3();
        let c = |n: &str| fig.concept(n);
        let corpus = Corpus::from_concept_sets(vec![
            (vec![c("F"), c("R"), c("T"), c("V")], 0),
            (vec![c("I"), c("L"), c("U")], 0),
            (vec![c("M"), c("N")], 0),
        ]);
        let source = MemorySource::build(&corpus, fig.ontology.len());
        let w = EdgeWeights::uniform(&fig.ontology);
        let weighted_engine = WeightedKnds::new(&fig.ontology, &w, &source, KndsConfig::default());
        let plain = crate::Knds::new(&fig.ontology, &source, KndsConfig::default());
        let q = fig.example_query();
        let a = weighted_engine.rds(&q, 3);
        let b = plain.rds(&q, 3);
        for (x, y) in a.results.iter().zip(b.results.iter()) {
            assert_eq!(x.doc, y.doc);
            assert_eq!(x.distance, y.distance);
        }
    }

    #[test]
    fn weighted_rds_matches_exhaustive_scan() {
        let ont = OntologyGenerator::new(GeneratorConfig::small(400).with_seed(9)).generate();
        let corpus = CorpusGenerator::new(
            &ont,
            CorpusProfile::radio_like().with_num_docs(50).with_mean_concepts(8.0),
        )
        .generate();
        let source = MemorySource::build(&corpus, ont.len());
        let w = EdgeWeights::from_fn(&ont, |p, c| 1 + (p.0.wrapping_add(c.0) % 3));
        let queries: Vec<Vec<ConceptId>> = corpus
            .documents()
            .filter(|d| d.num_concepts() >= 2)
            .take(5)
            .map(|d| d.concepts()[..2].to_vec())
            .collect();
        for (i, q) in queries.iter().enumerate() {
            for eps in [0.0, 0.5, 1.0] {
                let cfg = KndsConfig::default().with_error_threshold(eps);
                let engine = WeightedKnds::new(&ont, &w, &source, cfg);
                let got: Vec<f64> = engine.rds(q, 5).results.iter().map(|r| r.distance).collect();
                let expect = weighted_scan_rds(&ont, &w, &source, q, 5);
                assert_eq!(got.len(), expect.len());
                for (a, b) in got.iter().zip(expect.iter()) {
                    assert!(
                        (a - b).abs() < 1e-9 || (a.is_infinite() && b.is_infinite()),
                        "query {i} eps {eps}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn weighted_sds_matches_exhaustive_scan() {
        let ont = OntologyGenerator::new(GeneratorConfig::small(300).with_seed(10)).generate();
        let corpus = CorpusGenerator::new(
            &ont,
            CorpusProfile::radio_like().with_num_docs(40).with_mean_concepts(6.0),
        )
        .generate();
        let source = MemorySource::build(&corpus, ont.len());
        let w = EdgeWeights::from_fn(&ont, |p, _| 1 + (p.0 % 2));
        let q = corpus.documents().find(|d| d.num_concepts() >= 3).unwrap().concepts().to_vec();
        let engine = WeightedKnds::new(&ont, &w, &source, KndsConfig::default());
        let got: Vec<f64> = engine.sds(&q, 5).results.iter().map(|r| r.distance).collect();
        let expect = weighted_scan_sds(&ont, &w, &source, &q, 5);
        for (a, b) in got.iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn heavier_weights_change_the_ranking() {
        // Sanity: the weighting actually matters — a query whose unit-weight
        // winner is reached through a penalized region must change distance.
        let fig = fixture::figure3();
        let c = |n: &str| fig.concept(n);
        let corpus = Corpus::from_concept_sets(vec![
            (vec![c("M")], 0), // near I through G
            (vec![c("T")], 0), // far from I
        ]);
        let source = MemorySource::build(&corpus, fig.ontology.len());
        let q = vec![c("I")];

        let unit = EdgeWeights::uniform(&fig.ontology);
        let a = WeightedKnds::new(&fig.ontology, &unit, &source, KndsConfig::default()).rds(&q, 2);
        assert_eq!(a.results[0].doc, DocId(0));

        // Penalize I's own edges heavily: both documents get farther, and
        // the distances reflect the weights.
        let i = c("I");
        let g = c("G");
        let heavy =
            EdgeWeights::from_fn(
                &fig.ontology,
                |p, ch| {
                    if p == i || (p == g && ch == i) {
                        50
                    } else {
                        1
                    }
                },
            );
        let b = WeightedKnds::new(&fig.ontology, &heavy, &source, KndsConfig::default()).rds(&q, 2);
        assert!(b.results[0].distance > a.results[0].distance);
    }

    #[test]
    fn weighted_workspace_reuse_matches_fresh_runs() {
        let fig = fixture::figure3();
        let c = |n: &str| fig.concept(n);
        let corpus = Corpus::from_concept_sets(vec![
            (vec![c("F"), c("R"), c("T"), c("V")], 0),
            (vec![c("I"), c("L"), c("U")], 0),
            (vec![c("M"), c("N")], 0),
        ]);
        let source = MemorySource::build(&corpus, fig.ontology.len());
        let w = EdgeWeights::from_fn(&fig.ontology, |p, _| 1 + (p.0 % 2));
        let engine = WeightedKnds::new(&fig.ontology, &w, &source, KndsConfig::default());
        let q1 = fig.example_query();
        let q2 = vec![c("M"), c("V")];
        let mut ws = KndsWorkspace::new();
        for q in [&q1, &q2, &q1] {
            let a = engine.rds_with(&mut ws, q, 3);
            let b = engine.rds(q, 3);
            assert_eq!(a.results, b.results, "weighted RDS diverged under reuse");
            let a = engine.sds_with(&mut ws, q, 3);
            let b = engine.sds(q, 3);
            assert_eq!(a.results, b.results, "weighted SDS diverged under reuse");
        }
        // A unit-weight query on the same (shared) workspace still matches.
        let plain = crate::Knds::new(&fig.ontology, &source, KndsConfig::default());
        let a = plain.rds_with(&mut ws, &q1, 3);
        let b = plain.rds(&q1, 3);
        assert_eq!(a.results, b.results, "engine interleave diverged");
    }
}
