//! A deployment-shaped integration test: concurrent querying, on-the-fly
//! adds and deletes, checkpointing, and restart — the point-of-care story
//! of Section 1 exercised end to end.

use concept_rank::{BatchKind, Engine, SharedEngine};
use concept_rank_repro::demo;

fn queries(e: &Engine, n: usize) -> Vec<Vec<cbr_ontology::ConceptId>> {
    e.corpus()
        .documents()
        .filter(|d| d.num_concepts() >= 2)
        .take(n)
        .map(|d| d.concepts()[..2].to_vec())
        .collect()
}

#[test]
fn full_service_lifecycle() {
    let engine = demo::engine(2_500, 120, 14.0);
    let qs = queries(&engine, 6);

    // 1. Parallel batch answers match sequential.
    let batch = engine.batch(BatchKind::Rds, &qs, 5, 0);
    for (q, out) in qs.iter().zip(&batch) {
        let seq = engine.rds(q, 5).unwrap();
        let par = out.as_ref().unwrap();
        for (a, b) in seq.results.iter().zip(par.results.iter()) {
            assert_eq!(a.distance, b.distance);
        }
    }

    // 2. Concurrent reads while a writer admits and discharges patients.
    let shared = SharedEngine::new(engine);
    let admitted = std::thread::scope(|scope| {
        for q in &qs {
            let s = shared.clone();
            scope.spawn(move || {
                for _ in 0..10 {
                    assert!(!s.rds(q, 3).unwrap().results.is_empty());
                }
            });
        }
        let s = shared.clone();
        let payload = qs[0].clone();
        scope.spawn(move || s.add_document(payload)).join().unwrap()
    });
    assert!(shared.with_engine(|e| e.is_live(admitted)));

    // 3. The admitted record dominates its own query; discharge removes it.
    let r = shared.rds(&qs[0], 1).unwrap();
    assert_eq!(r.results[0].distance, 0.0);
    shared.with_engine(|e| assert!(e.is_live(admitted)));
    // Discharge through a write borrow (no dedicated helper: use the
    // engine directly to keep the API surface honest).
    {
        let s = shared.clone();
        // SharedEngine exposes reads; deletion needs the owning handle —
        // emulate an operator action through a fresh engine checkpoint
        // below instead.
        let _ = s;
    }

    // 4. Checkpoint and restart: same answers, appended doc folded in.
    // (Persistence rides on the serde-backed codec, so these steps only
    // run when the `serde` feature is on.)
    #[cfg(feature = "serde")]
    {
        let dir = std::env::temp_dir().join(format!("cbr-lifecycle-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        shared.with_engine(|e| e.save(&dir)).unwrap();
        let mut restarted = Engine::load(&dir, None).unwrap();
        assert_eq!(restarted.num_docs(), shared.num_docs());
        for q in &qs {
            let a = shared.rds(q, 4).unwrap();
            let b = restarted.rds(q, 4).unwrap();
            for (x, y) in a.results.iter().zip(b.results.iter()) {
                assert_eq!(x.distance, y.distance, "restart changed a ranking");
            }
        }

        // 5. Deletion after restart: the admitted record leaves the results.
        let hit = restarted.rds(&qs[0], 1).unwrap().results[0].doc;
        restarted.remove_document(hit).unwrap();
        let after = restarted.rds(&qs[0], 3).unwrap();
        assert!(after.results.iter().all(|r| r.doc != hit));

        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn tuning_then_querying_is_exact() {
    let mut engine = demo::engine(2_000, 80, 10.0);
    let qs = queries(&engine, 4);
    let chosen = engine.auto_tune(cbr_knds::TuneFor::Rds, &qs, 5).unwrap();
    assert!((0.0..=1.0).contains(&chosen));
    for q in &qs {
        let fast = engine.rds(q, 5).unwrap();
        let slow = engine.rds_full_scan(q, 5).unwrap();
        for (a, b) in fast.results.iter().zip(slow.results.iter()) {
            assert_eq!(a.distance, b.distance);
        }
    }
}

#[test]
fn sharded_matches_engine_results() {
    let engine = demo::engine(1_500, 100, 8.0);
    let qs = queries(&engine, 3);
    // Drive the sharded path against the engine's own collection through a
    // fresh MemorySource (the engine's source is private).
    let source = cbr_index::MemorySource::build(engine.corpus(), engine.ontology().len());
    for q in &qs {
        let expect = engine.rds(q, 5).unwrap();
        let got = cbr_knds::rds_sharded(engine.ontology(), &source, q, 5, engine.config(), 4);
        for (a, b) in got.results.iter().zip(expect.results.iter()) {
            assert_eq!(a.distance, b.distance);
        }
    }
}
