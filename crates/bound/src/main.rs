//! `cbr-bound` CLI: run the static numeric-safety analysis.
//!
//! ```sh
//! cbr-bound                           # analyze the real workspace (bound.allow applied)
//! cbr-bound --json                    # machine-readable report with the B04 proof stats
//! cbr-bound --fixtures                # analyze the seeded-violation fixture tree
//! cbr-bound --fixtures --expect-findings  # assert every rule B01-B05 fires
//! ```
//!
//! Exit codes: `0` clean (or, with `--expect-findings`, all rules
//! fired), `1` findings (or a missing rule), `2` usage error.

#![forbid(unsafe_code)]

use cbr_bound::{run_fixtures, run_workspace};
use cbr_flow::workspace_root;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cbr-bound [--json] [--fixtures] [--expect-findings]\n\n\
         options:\n  \
         --json             emit the machine-readable report\n  \
         --fixtures         analyze the seeded-violation fixture tree instead of the workspace\n  \
         --expect-findings  fail unless every rule B01-B05 produced at least one finding"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut json = false;
    let mut fixtures = false;
    let mut expect_findings = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--fixtures" => fixtures = true,
            "--expect-findings" => expect_findings = true,
            "--help" | "-h" => {
                let _ = usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let root = workspace_root();
    let br = if fixtures { run_fixtures(&root) } else { run_workspace(&root) };

    if json {
        print!("{}", br.render_json());
    } else {
        print!("{}", br.render_text());
    }

    if expect_findings {
        let missing: Vec<&str> = ["B01", "B02", "B03", "B04", "B05"]
            .into_iter()
            .filter(|rule| !br.report.findings.iter().any(|f| f.rule == *rule))
            .collect();
        if missing.is_empty() {
            eprintln!("expect-findings: all rules B01-B05 fired");
            ExitCode::SUCCESS
        } else {
            eprintln!("expect-findings: rule(s) {} produced no findings", missing.join(", "));
            ExitCode::FAILURE
        }
    } else if br.report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
