//! Model-checked harnesses over the engine's concurrent paths.
//!
//! Each harness is a closure the [`sched`] explorer runs under every
//! schedule its strategy produces. A harness returns `Ok(())` when the
//! interleaving it just experienced upheld the invariant it encodes, and
//! `Err(description)` otherwise; the explorer turns the error into a
//! finding tagged with a replayable schedule ID.
//!
//! The honest harnesses cover the four concurrent subsystems:
//!
//! * the [`SharedEngine`] workspace pool (readers racing each other and a
//!   writer),
//! * the snapshot publish/retire protocol (`publish-retire` and
//!   `compact-race`: every racing read answers exactly one epoch's
//!   oracle, and retiring an epoch — even by physical compaction — never
//!   invalidates a reader still pinning it),
//! * the batch runner's work/slot queues (every submission fills exactly
//!   one slot, even when a worker panics mid-query),
//! * sharded kNDS fan-out (the merged top-k equals the single-engine
//!   answer on every interleaving).
//!
//! With the `seeded-races` feature two deliberately broken harnesses are
//! added so CI can prove the checker is not vacuous.

use cbr_corpus::{Corpus, DocId};
use cbr_knds::{rds_sharded, Knds, KndsConfig};
use cbr_ontology::{fixture, ConceptId, Ontology};
use concept_rank::index::MemorySource;
use concept_rank::{BatchKind, Engine, EngineBuilder, EngineError, SharedEngine};
use sched::explore::{explore, replay, Exploration, Options, ReplayRun};

/// A named harness plus the closure the explorer drives.
pub struct Harness {
    /// Stable name, used for CLI selection and report rows.
    pub name: &'static str,
    /// One-line description of the invariant being checked.
    pub about: &'static str,
    run: Box<dyn Fn() -> Result<(), String> + Send + Sync>,
}

impl std::fmt::Debug for Harness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Harness").field("name", &self.name).finish_non_exhaustive()
    }
}

impl Harness {
    /// Explores this harness under `opts`.
    pub fn explore(&self, opts: &Options) -> Exploration {
        explore(opts, || (self.run)())
    }

    /// Replays one schedule ID against this harness.
    pub fn replay(&self, opts: &Options, id: &str) -> Result<ReplayRun, String> {
        replay(opts, id, || (self.run)())
    }
}

/// The document sets every harness collection is built from: the paper's
/// Figure 3 worked example plus a few small neighbors.
fn collection_sets(fig: &fixture::Figure3) -> Vec<(Vec<ConceptId>, u32)> {
    let c = |n: &str| fig.concept(n);
    vec![
        (fig.example_document(), 0),
        (fig.example_query(), 0),
        (vec![c("M"), c("N")], 0),
        (vec![c("U"), c("L")], 0),
        (vec![c("G"), c("H")], 0),
    ]
}

/// Builds a tiny engine over the Figure 3 ontology, cheap enough to
/// reconstruct on every explored schedule so the mutable-state harnesses
/// stay hermetic. Returns the engine and the worked example's query.
fn tiny_engine() -> (Engine, Vec<ConceptId>) {
    let fig = fixture::figure3();
    let corpus = Corpus::from_concept_sets(collection_sets(&fig));
    let q = fig.example_query();
    (EngineBuilder::new().build(fig.ontology, corpus), q)
}

/// Ontology + source + queries for the read-only harnesses, built once
/// per harness and shared across schedules by reference.
fn tiny_collection() -> (Ontology, MemorySource, Vec<Vec<ConceptId>>) {
    let fig = fixture::figure3();
    let c = |n: &str| fig.concept(n);
    let corpus = Corpus::from_concept_sets(collection_sets(&fig));
    let source = MemorySource::build(&corpus, fig.ontology.len());
    let queries =
        vec![fig.example_query(), vec![c("M"), c("N")], vec![c("F"), c("R")], vec![c("G")]];
    (fig.ontology, source, queries)
}

/// Port of the PR-2 pool stress test onto the explorer: concurrent readers
/// share the workspace pool; on every interleaving each query succeeds and
/// the pool ends with at least one and at most `READERS` workspaces. The
/// runtime's pool-leak analysis additionally checks every popped workspace
/// is pushed back.
fn pool_stress() -> Harness {
    const READERS: usize = 3;
    const ROUNDS: usize = 2;
    Harness {
        name: "pool-stress",
        about: "workspace pool never exceeds peak concurrency under racing readers",
        run: Box::new(|| {
            let (engine, q) = tiny_engine();
            let shared = SharedEngine::new(engine);
            let mut joins = Vec::new();
            sched::sync::scope(|s| {
                let handles: Vec<_> = (0..READERS)
                    .map(|_| {
                        let sh = shared.clone();
                        let q = q.clone();
                        s.spawn(move || {
                            let mut found = 0;
                            for _ in 0..ROUNDS {
                                found += sh.rds(&q, 2)?.results.len();
                            }
                            Ok::<usize, EngineError>(found)
                        })
                    })
                    .collect();
                joins = handles
                    .into_iter()
                    .map(|h| h.join().map_err(|_| "reader panicked".to_string()))
                    .collect();
            });
            for j in joins {
                let n = j?.map_err(|e| format!("query failed: {e}"))?;
                if n == 0 {
                    return Err("query returned no results".to_string());
                }
            }
            let pooled = shared.pooled_workspaces();
            if pooled == 0 || pooled > READERS {
                return Err(format!("pool holds {pooled} workspaces for {READERS} readers"));
            }
            Ok(())
        }),
    }
}

/// A reader querying while a writer appends: the paper's point-of-care
/// interleaving. On every schedule the append lands exactly once, the
/// reader sees a consistent snapshot, and the appended exact match ranks
/// first afterwards.
fn pool_writer() -> Harness {
    Harness {
        name: "pool-writer",
        about: "reads stay consistent while a writer appends a document",
        run: Box::new(|| {
            let (engine, q) = tiny_engine();
            let shared = SharedEngine::new(engine);
            let before = shared.num_docs();
            let mut read = Ok(0usize);
            sched::sync::scope(|s| {
                let sh = shared.clone();
                let qq = q.clone();
                let reader = s.spawn(move || sh.rds(&qq, 1).map(|r| r.results.len()));
                let sh = shared.clone();
                let qq = q.clone();
                s.spawn(move || {
                    sh.add_document(qq);
                });
                read = match reader.join() {
                    Ok(r) => r.map_err(|e| format!("reader failed: {e}")),
                    Err(_) => Err("reader panicked".to_string()),
                };
            });
            if read? == 0 {
                return Err("reader saw no documents".to_string());
            }
            if shared.num_docs() != before + 1 {
                return Err(format!(
                    "append lost: {} docs, expected {}",
                    shared.num_docs(),
                    before + 1
                ));
            }
            let r = shared.rds(&q, 1).map_err(|e| e.to_string())?;
            if r.results[0].distance != 0.0 {
                return Err("appended exact match does not rank first".to_string());
            }
            Ok(())
        }),
    }
}

/// The ranking as a comparable value: `(doc, distance)` in rank order.
fn answer(r: &cbr_knds::QueryResult) -> Vec<(DocId, f64)> {
    r.results.iter().map(|d| (d.doc, d.distance)).collect()
}

/// The snapshot/session seam under a racing publish. A reader pins an
/// epoch and queries while the writer appends and publishes. On every
/// interleaving: the concurrent query and the pinned snapshot each answer
/// exactly one epoch's oracle (publishes are atomic — no torn snapshot),
/// and a query issued after the writer finishes sees the new epoch.
/// Retire safety rides along: the pinned snapshot keeps answering its
/// epoch bit-for-bit even once the publish has moved past it.
fn publish_retire() -> Harness {
    const K: usize = 2;
    let (mut oracle, q) = tiny_engine();
    let before = answer(&oracle.rds(&q, K).expect("oracle query"));
    oracle.add_document(q.clone());
    let after = answer(&oracle.rds(&q, K).expect("oracle query"));
    assert_ne!(before, after, "the append must change the top-{K} or the harness is vacuous");
    Harness {
        name: "publish-retire",
        about: "epoch publishes are atomic; retire never invalidates a pinned reader",
        run: Box::new(move || {
            let (engine, _) = tiny_engine();
            let shared = SharedEngine::new(engine);
            let mut read = Err("reader never ran".to_string());
            sched::sync::scope(|s| {
                let sh = shared.clone();
                let qq = q.clone();
                let reader = s.spawn(move || {
                    let pinned = sh.snapshot();
                    let live = answer(&sh.rds(&qq, K)?);
                    let held = answer(&pinned.rds(&qq, K)?);
                    Ok::<_, EngineError>((live, held))
                });
                let sh = shared.clone();
                let qq = q.clone();
                s.spawn(move || {
                    sh.add_document(qq);
                });
                read = match reader.join() {
                    Ok(r) => r.map_err(|e| format!("reader failed: {e}")),
                    Err(_) => Err("reader panicked".to_string()),
                };
            });
            let (live, held) = read?;
            if live != before && live != after {
                return Err("concurrent query answered a torn epoch".to_string());
            }
            if held != before && held != after {
                return Err("pinned snapshot answered a torn epoch".to_string());
            }
            let settled = answer(&shared.rds(&q, K).map_err(|e| e.to_string())?);
            if settled != after {
                return Err("query after the publish missed the appended epoch".to_string());
            }
            Ok(())
        }),
    }
}

/// A query racing delete + physical compaction + publish. The writer
/// tombstones the top-ranked document and compacts — physically dropping
/// it and rewriting segments — while a reader queries a pinned epoch and
/// the live handle. On every interleaving both answers stay
/// oracle-consistent (the collection before the delete, or after it;
/// never a hybrid), proving compaction cannot free a segment out from
/// under a running query.
fn compact_race() -> Harness {
    const K: usize = 2;
    let (mut oracle, q) = tiny_engine();
    let before = answer(&oracle.rds(&q, K).expect("oracle query"));
    let victim = before[0].0;
    oracle.remove_document(victim).expect("victim is live");
    assert!(oracle.compact(), "the tombstone must force a physical rewrite");
    let after = answer(&oracle.rds(&q, K).expect("oracle query"));
    assert_ne!(before, after, "the delete must change the top-{K} or the harness is vacuous");
    Harness {
        name: "compact-race",
        about: "queries racing delete+compact+publish stay oracle-consistent",
        run: Box::new(move || {
            let (engine, _) = tiny_engine();
            let shared = SharedEngine::new(engine);
            let mut read = Err("reader never ran".to_string());
            let mut wrote = Err("writer never ran".to_string());
            sched::sync::scope(|s| {
                let sh = shared.clone();
                let qq = q.clone();
                let reader = s.spawn(move || {
                    let pinned = sh.snapshot();
                    let live = answer(&sh.rds(&qq, K)?);
                    let held = answer(&pinned.rds(&qq, K)?);
                    Ok::<_, EngineError>((live, held))
                });
                let sh = shared.clone();
                let writer = s.spawn(move || {
                    sh.remove_document(victim)?;
                    sh.compact();
                    Ok::<_, EngineError>(())
                });
                read = match reader.join() {
                    Ok(r) => r.map_err(|e| format!("reader failed: {e}")),
                    Err(_) => Err("reader panicked".to_string()),
                };
                wrote = match writer.join() {
                    Ok(r) => r.map_err(|e| format!("writer failed: {e}")),
                    Err(_) => Err("writer panicked".to_string()),
                };
            });
            wrote?;
            let (live, held) = read?;
            if live != before && live != after {
                return Err("concurrent query answered a torn epoch".to_string());
            }
            if held != before && held != after {
                return Err("pinned snapshot answered a torn epoch".to_string());
            }
            let settled = shared.snapshot();
            if settled.is_live(victim) {
                return Err("victim still live after delete+compact".to_string());
            }
            if answer(&settled.rds(&q, K).map_err(|e| e.to_string())?) != after {
                return Err("query after the compaction missed the compacted epoch".to_string());
            }
            Ok(())
        }),
    }
}

/// Every batch submission yields exactly one result slot, in input order,
/// matching the sequential answer — under every interleaving of the
/// work-stealing workers.
fn batch_slots() -> Harness {
    let (_, _, queries) = tiny_collection();
    let fig = fixture::figure3();
    let corpus = Corpus::from_concept_sets(collection_sets(&fig));
    let engine = EngineBuilder::new().build(fig.ontology, corpus);
    let expected: Vec<Vec<(DocId, f64)>> = engine
        .batch(BatchKind::Rds, &queries, 2, 1)
        .into_iter()
        .map(|r| {
            r.expect("sequential batch succeeds")
                .results
                .iter()
                .map(|d| (d.doc, d.distance))
                .collect()
        })
        .collect();
    Harness {
        name: "batch-slots",
        about: "each batch submission fills exactly one slot with the sequential answer",
        run: Box::new(move || {
            let out = engine.batch(BatchKind::Rds, &queries, 2, 3);
            if out.len() != queries.len() {
                return Err(format!("{} slots for {} queries", out.len(), queries.len()));
            }
            for (i, (slot, want)) in out.iter().zip(&expected).enumerate() {
                let got = slot.as_ref().map_err(|e| format!("slot {i} failed: {e}"))?;
                let got: Vec<(DocId, f64)> =
                    got.results.iter().map(|d| (d.doc, d.distance)).collect();
                if &got != want {
                    return Err(format!("slot {i} diverged from the sequential answer"));
                }
            }
            Ok(())
        }),
    }
}

/// Model-checked regression for the poisoned-slot path: `k = 0` trips the
/// kNDS precondition assert inside every worker mid-query, and on every
/// interleaving the batch must still return one `WorkerPanicked` slot per
/// query instead of dropping slots or unwinding.
fn batch_poison() -> Harness {
    let (_, _, queries) = tiny_collection();
    let fig = fixture::figure3();
    let corpus = Corpus::from_concept_sets(collection_sets(&fig));
    let engine = EngineBuilder::new().build(fig.ontology, corpus);
    Harness {
        name: "batch-poison",
        about: "a worker panicking mid-query reports its slot, never drops it",
        run: Box::new(move || {
            let out = engine.batch(BatchKind::Rds, &queries, 0, 3);
            if out.len() != queries.len() {
                return Err(format!("{} slots for {} queries", out.len(), queries.len()));
            }
            for (i, slot) in out.iter().enumerate() {
                match slot {
                    Err(EngineError::WorkerPanicked(_)) => {}
                    other => {
                        return Err(format!(
                            "slot {i} should report the worker panic, got {other:?}"
                        ))
                    }
                }
            }
            Ok(())
        }),
    }
}

/// Sharded fan-out: the merged per-shard top-k equals the single-engine
/// top-k on every interleaving of the shard threads.
fn sharded_merge() -> Harness {
    let (ont, source, queries) = tiny_collection();
    let cfg = KndsConfig::default();
    let q = queries[0].clone();
    let expected: Vec<(DocId, f64)> = {
        let single = Knds::new(&ont, &source, cfg.clone());
        single.rds(&q, 3).results.iter().map(|d| (d.doc, d.distance)).collect()
    };
    Harness {
        name: "sharded-merge",
        about: "sharded top-k merge equals the single-engine answer",
        run: Box::new(move || {
            let got = rds_sharded(&ont, &source, &q, 3, &cfg, 2);
            let got: Vec<(DocId, f64)> = got.results.iter().map(|d| (d.doc, d.distance)).collect();
            if got.len() != expected.len() {
                return Err(format!(
                    "merged {} results, single engine found {}",
                    got.len(),
                    expected.len()
                ));
            }
            for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
                if g.1 != e.1 {
                    return Err(format!("rank {i}: merged distance {} != {}", g.1, e.1));
                }
            }
            Ok(())
        }),
    }
}

/// Seeded bug: a read-modify-write that drops the lock between the read
/// and the write. Two threads both read 0 on some schedule and the final
/// count is 1 — the checker must find that schedule and print its ID.
#[cfg(feature = "seeded-races")]
fn seeded_unlock_race() -> Harness {
    use sched::sync::{Arc, Mutex};
    Harness {
        name: "seeded-unlock-race",
        about: "SEEDED BUG: lock released between read and write loses an update",
        run: Box::new(|| {
            let n = Arc::new(Mutex::new(0usize));
            sched::sync::scope(|s| {
                for _ in 0..2 {
                    let n = n.clone();
                    s.spawn(move || {
                        // Bug: the guard is dropped after the read, so the
                        // increment spans two critical sections.
                        let v = *n.lock();
                        *n.lock() = v + 1;
                    });
                }
            });
            let v = *n.lock();
            if v != 2 {
                return Err(format!("lost update: counter is {v}, expected 2"));
            }
            Ok(())
        }),
    }
}

/// Seeded bug: two threads acquire the same two locks in opposite orders.
/// Some schedule deadlocks outright, and the cross-schedule lock-order
/// graph contains a cycle either way.
#[cfg(feature = "seeded-races")]
fn seeded_lock_inversion() -> Harness {
    use sched::sync::{Arc, Mutex};
    Harness {
        name: "seeded-lock-inversion",
        about: "SEEDED BUG: opposite lock orders deadlock on some schedule",
        run: Box::new(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            sched::sync::scope(|s| {
                let (a1, b1) = (a.clone(), b.clone());
                s.spawn(move || {
                    let _ga = a1.lock();
                    let _gb = b1.lock();
                });
                let (a2, b2) = (a.clone(), b.clone());
                s.spawn(move || {
                    let _gb = b2.lock();
                    let _ga = a2.lock();
                });
            });
            Ok(())
        }),
    }
}

/// All harnesses in reporting order. The seeded-bug harnesses appear only
/// under the `seeded-races` feature.
pub fn registry() -> Vec<Harness> {
    #[cfg_attr(not(feature = "seeded-races"), allow(unused_mut))]
    let mut all = vec![
        pool_stress(),
        pool_writer(),
        publish_retire(),
        compact_race(),
        batch_slots(),
        batch_poison(),
        sharded_merge(),
    ];
    #[cfg(feature = "seeded-races")]
    {
        all.push(seeded_unlock_race());
        all.push(seeded_lock_inversion());
    }
    all
}
