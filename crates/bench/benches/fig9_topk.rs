//! Criterion bench for Figure 9: query time vs number of results k,
//! kNDS vs the no-pruning baseline, RDS and SDS.

use cbr_bench::{Scale, Workbench};
use cbr_knds::{baseline, Knds, KndsConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_fig9(c: &mut Criterion) {
    let wb = Workbench::build(Scale::micro());
    for coll in &wb.collections {
        let rds_query = coll.rds_queries(1, 5, 21).remove(0);
        let sds_query = coll.sds_queries(1, 22).remove(0);
        let cfg = KndsConfig::default().with_error_threshold(coll.default_eps);
        let engine = Knds::new(&wb.ontology, &coll.source, cfg);
        let mut group = c.benchmark_group(format!("fig9/{}", coll.name));
        group.sample_size(10).measurement_time(Duration::from_secs(2));
        for k in [3usize, 10, 100] {
            group.bench_with_input(BenchmarkId::new("RDS/kNDS", k), &k, |b, &k| {
                b.iter(|| black_box(engine.rds(black_box(&rds_query), k).results.len()))
            });
            group.bench_with_input(BenchmarkId::new("RDS/baseline", k), &k, |b, &k| {
                b.iter(|| {
                    black_box(
                        baseline::rds(&wb.ontology, &coll.source, &rds_query, k).results.len(),
                    )
                })
            });
            group.bench_with_input(BenchmarkId::new("SDS/kNDS", k), &k, |b, &k| {
                b.iter(|| black_box(engine.sds(black_box(&sds_query), k).results.len()))
            });
            group.bench_with_input(BenchmarkId::new("SDS/baseline", k), &k, |b, &k| {
                b.iter(|| {
                    black_box(
                        baseline::sds(&wb.ontology, &coll.source, &sds_query, k).results.len(),
                    )
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
