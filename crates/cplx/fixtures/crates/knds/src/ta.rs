//! Comparator fixture: the TA baseline root carries its allowed
//! `O(nq·D)` round-robin shape, keeping the C03 differential contrast
//! non-vacuous (no seeded violation here).

/// Root `knds::ta::rds_with`: sorted access over `nq` lists of `D`
/// entries each — the quadratic shape the paper's Section 4.1 baseline
/// is permitted (and expected) to have.
pub fn rds_with(lists: &[u32], entries: &[u32]) -> u32 {
    let mut acc = 0;
    for &l in lists {
        for &e in entries {
            acc += l.min(e);
        }
    }
    acc
}
