//! Offline subset of the `criterion` crate.
//!
//! The sandbox has no registry access, so this crate implements the bench
//! API surface the workspace uses (`benchmark_group`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`/`criterion_main!`) over a simple
//! wall-clock runner: warm up, auto-scale the batch size to the
//! per-sample budget, then report min/mean over `sample_size` samples.
//! No statistics beyond that, no HTML reports, no filtering — every
//! benchmark in the binary runs. Numbers are comparable within a run,
//! which is what the fresh-vs-reused workspace comparisons need. Drop the
//! `[patch.crates-io]` entry to use the real crate.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Identifier combining a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, auto-scaling iterations into the sample budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(routine());
        }
        self.samples.push(start.elapsed() / self.iters_per_sample as u32);
    }
}

/// A named set of related benchmarks sharing a sampling configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        let (sample_size, time) = (self.sample_size, self.measurement_time);
        run_bench(&label, sample_size, time, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// Top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into_label(), 10, Duration::from_secs(1), f);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, time: Duration, mut f: F) {
    // Calibration pass: one iteration, to size batches for the budget.
    let mut cal = Bencher { iters_per_sample: 1, samples: Vec::new() };
    f(&mut cal);
    let once = cal.samples.first().copied().unwrap_or(Duration::from_nanos(1));
    let per_sample = time.div_f64(sample_size as f64);
    let iters = (per_sample.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut b = Bencher { iters_per_sample: iters, samples: Vec::new() };
    for _ in 0..sample_size {
        f(&mut b);
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len().max(1) as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{label:<48} mean {:>12} min {:>12} ({} samples x {} iters)",
        fmt_duration(mean),
        fmt_duration(min),
        sample_size,
        iters,
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3).measurement_time(Duration::from_millis(30));
        let input = 10u64;
        group.bench_with_input(BenchmarkId::new("sum", input), &input, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| 1u32 + 1));
        group.finish();
    }
}
