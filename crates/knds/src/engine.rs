//! The kNDS engine (Algorithm 2) for RDS and SDS queries.
//!
//! One search proceeds in breadth-first **levels**. Level `l` processes
//! every valid-path BFS state at distance `l` from some query concept:
//!
//! 1. **coverage** — for each state `(origin, node)` reached for the first
//!    time, the posting list of `node` updates every containing document's
//!    partial distance (`Md` of Equation 5; for SDS also the reverse map
//!    `M'd` of Equation 7 on the node's global first touch);
//! 2. **expansion** — ascending states push parents (still ascending) and
//!    children (now descending); descending states push only children, so
//!    every traversed path is ∧-shaped (the valid-path rule of
//!    Section 3.1);
//! 3. **examination** — candidates are sorted by lower bound
//!    (Equations 6/8) and examined while the error estimate
//!    `εd = 1 − Dpartial/D⁻` stays at or below `εθ` (Equation 9): complete
//!    candidates finalize from their partial sums (Section 5.3,
//!    optimization 3), incomplete ones get a DRC probe;
//! 4. **termination** — once the top-k heap is full and the smallest lower
//!    bound among unexamined *and unseen* documents reaches the k-th
//!    distance `D⁺ₖ`, the remaining collection is provably outside the
//!    top-k.
//!
//! Exactness does not depend on `εθ` or the queue watermark: both only
//! steer when exact distances are computed.
//!
//! All entry points funnel into one sink-parameterized runner over a
//! borrowed [`KndsWorkspace`]; the `*_with` variants reuse a caller-owned
//! workspace so steady-state queries allocate nothing.

use crate::config::KndsConfig;
use crate::metrics::QueryMetrics;
use crate::util::TopK;
use crate::workspace::KndsWorkspace;
use cbr_corpus::DocId;
use cbr_dradix::Drc;
use cbr_index::{packing, IndexSource};
use cbr_ontology::{ConceptId, Ontology};
use std::time::Instant;

/// One ranked result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedDoc {
    /// The document.
    pub doc: DocId,
    /// Its exact distance from the query (`Ddq` for RDS — an integer value
    /// widened to `f64` — or the normalized `Ddd` for SDS).
    pub distance: f64,
}

/// Results plus instrumentation for one query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The top-k documents, ascending by distance (ties by id).
    pub results: Vec<RankedDoc>,
    /// Work and timing counters.
    pub metrics: QueryMetrics,
}

/// The kNDS query engine over an ontology and an [`IndexSource`].
#[derive(Debug)]
pub struct Knds<'a, S: IndexSource> {
    ontology: &'a Ontology,
    source: &'a S,
    config: KndsConfig,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    Rds,
    Sds,
}

/// One row of the dense candidate table (`Md` bookkeeping of Equation 5).
/// The per-origin coverage bits live in the workspace's shared arena (one
/// `cover_stride` span per row), so a row is a small flat record and
/// admission allocates nothing.
#[derive(Debug)]
pub(crate) struct Candidate {
    /// Query concepts covered by the forward expansion.
    pub(crate) covered: u32,
    /// Σ of first-touch levels over covered query concepts.
    pub(crate) partial: u64,
    /// SDS only: concepts of this document touched by any expansion.
    pub(crate) rev_covered: u32,
    /// SDS only: Σ of first-touch levels over covered document concepts.
    pub(crate) rev_sum: u64,
    /// `|d|` (number of concepts), needed by the SDS normalizers.
    pub(crate) doc_len: u32,
    pub(crate) examined: bool,
}

impl Candidate {
    pub(crate) fn new(doc_len: u32) -> Candidate {
        Candidate { covered: 0, partial: 0, rev_covered: 0, rev_sum: 0, doc_len, examined: false }
    }
}

impl<'a, S: IndexSource> Knds<'a, S> {
    /// Creates an engine over `ontology` and `source`.
    pub fn new(ontology: &'a Ontology, source: &'a S, config: KndsConfig) -> Self {
        Knds { ontology, source, config }
    }

    /// The active configuration.
    pub fn config(&self) -> &KndsConfig {
        &self.config
    }

    /// Evaluates an RDS query (Definition 1): the `k` documents minimizing
    /// `Ddq(d, q)` (Equation 2). `query` is treated as a set.
    ///
    /// ```
    /// use cbr_corpus::Corpus;
    /// use cbr_index::MemorySource;
    /// use cbr_knds::{Knds, KndsConfig};
    /// use cbr_ontology::fixture;
    ///
    /// let fig = fixture::figure3();
    /// let corpus = Corpus::from_concept_sets(vec![
    ///     (fig.example_document(), 0),
    ///     (fig.example_query(), 0),
    /// ]);
    /// let source = MemorySource::build(&corpus, fig.ontology.len());
    /// let knds = Knds::new(&fig.ontology, &source, KndsConfig::default());
    ///
    /// let top = knds.rds(&fig.example_query(), 2);
    /// assert_eq!(top.results[0].distance, 0.0); // doc 1 is the query itself
    /// assert_eq!(top.results[1].distance, 7.0); // the paper's Example 1
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `query` is empty or `k` is zero.
    pub fn rds(&self, query: &[ConceptId], k: usize) -> QueryResult {
        let mut ws = KndsWorkspace::new();
        self.rds_with(&mut ws, query, k)
    }

    /// [`Knds::rds`] over a caller-owned workspace: identical results,
    /// but all per-query state reuses `ws`'s capacity, so a warm
    /// workspace makes the hot loop allocation-free.
    ///
    /// ```
    /// use cbr_corpus::Corpus;
    /// use cbr_index::MemorySource;
    /// use cbr_knds::{Knds, KndsConfig, KndsWorkspace};
    /// use cbr_ontology::fixture;
    ///
    /// let fig = fixture::figure3();
    /// let corpus = Corpus::from_concept_sets(vec![
    ///     (fig.example_document(), 0),
    ///     (fig.example_query(), 0),
    /// ]);
    /// let source = MemorySource::build(&corpus, fig.ontology.len());
    /// let knds = Knds::new(&fig.ontology, &source, KndsConfig::default());
    ///
    /// let mut ws = KndsWorkspace::new();
    /// let cold = knds.rds_with(&mut ws, &fig.example_query(), 2);
    /// let warm = knds.rds_with(&mut ws, &fig.example_query(), 2);
    /// assert_eq!(cold.results, warm.results);
    /// assert_eq!(warm.metrics.workspace_reused, 1);
    /// ```
    pub fn rds_with(&self, ws: &mut KndsWorkspace, query: &[ConceptId], k: usize) -> QueryResult {
        self.run_hooked(ws, Kind::Rds, query, k, None, None)
    }

    /// Evaluates an SDS query (Definition 2): the `k` documents minimizing
    /// the symmetric `Ddd(d, dq)` (Equation 3), where `query_doc` is the
    /// query document's concept set.
    ///
    /// # Panics
    ///
    /// Panics if `query_doc` is empty or `k` is zero.
    pub fn sds(&self, query_doc: &[ConceptId], k: usize) -> QueryResult {
        let mut ws = KndsWorkspace::new();
        self.sds_with(&mut ws, query_doc, k)
    }

    /// [`Knds::sds`] over a caller-owned workspace; see
    /// [`Knds::rds_with`].
    pub fn sds_with(
        &self,
        ws: &mut KndsWorkspace,
        query_doc: &[ConceptId],
        k: usize,
    ) -> QueryResult {
        self.run_hooked(ws, Kind::Sds, query_doc, k, None, None)
    }

    /// RDS with progressive emission (Section 5.3, optimization 4):
    /// `on_final` fires for each document the moment it is *provably* in
    /// the top-k — its exact distance is strictly below every unexamined
    /// and unseen document's lower bound — and the emission order is
    /// non-decreasing in distance. Every result is emitted exactly once;
    /// the returned [`QueryResult`] is identical to [`Knds::rds`].
    pub fn rds_streaming(
        &self,
        query: &[ConceptId],
        k: usize,
        on_final: impl FnMut(RankedDoc),
    ) -> QueryResult {
        let mut ws = KndsWorkspace::new();
        self.run_hooked(&mut ws, Kind::Rds, query, k, Some(Box::new(on_final)), None)
    }

    /// [`Knds::rds_streaming`] over a caller-owned workspace; see
    /// [`Knds::rds_with`] for the reuse contract.
    pub fn rds_streaming_with(
        &self,
        ws: &mut KndsWorkspace,
        query: &[ConceptId],
        k: usize,
        on_final: impl FnMut(RankedDoc),
    ) -> QueryResult {
        self.run_hooked(ws, Kind::Rds, query, k, Some(Box::new(on_final)), None)
    }

    /// SDS with progressive emission; see [`Knds::rds_streaming`].
    pub fn sds_streaming(
        &self,
        query_doc: &[ConceptId],
        k: usize,
        on_final: impl FnMut(RankedDoc),
    ) -> QueryResult {
        let mut ws = KndsWorkspace::new();
        self.run_hooked(&mut ws, Kind::Sds, query_doc, k, Some(Box::new(on_final)), None)
    }

    /// [`Knds::sds_streaming`] over a caller-owned workspace; see
    /// [`Knds::rds_with`] for the reuse contract.
    pub fn sds_streaming_with(
        &self,
        ws: &mut KndsWorkspace,
        query_doc: &[ConceptId],
        k: usize,
        on_final: impl FnMut(RankedDoc),
    ) -> QueryResult {
        self.run_hooked(ws, Kind::Sds, query_doc, k, Some(Box::new(on_final)), None)
    }

    /// RDS with a [`TraceEvent`](crate::trace::TraceEvent) stream — the
    /// paper's Table 2 walkthrough, live. Tracing is verbose; use it for
    /// debugging and teaching, not benchmarking.
    pub fn rds_traced(
        &self,
        query: &[ConceptId],
        k: usize,
        on_trace: impl FnMut(crate::trace::TraceEvent),
    ) -> QueryResult {
        let mut ws = KndsWorkspace::new();
        self.run_hooked(&mut ws, Kind::Rds, query, k, None, Some(Box::new(on_trace)))
    }

    /// [`Knds::rds_traced`] over a caller-owned workspace; see
    /// [`Knds::rds_with`] for the reuse contract.
    pub fn rds_traced_with(
        &self,
        ws: &mut KndsWorkspace,
        query: &[ConceptId],
        k: usize,
        on_trace: impl FnMut(crate::trace::TraceEvent),
    ) -> QueryResult {
        self.run_hooked(ws, Kind::Rds, query, k, None, Some(Box::new(on_trace)))
    }

    /// SDS with a trace stream; see [`Knds::rds_traced`].
    pub fn sds_traced(
        &self,
        query_doc: &[ConceptId],
        k: usize,
        on_trace: impl FnMut(crate::trace::TraceEvent),
    ) -> QueryResult {
        let mut ws = KndsWorkspace::new();
        self.run_hooked(&mut ws, Kind::Sds, query_doc, k, None, Some(Box::new(on_trace)))
    }

    /// [`Knds::sds_traced`] over a caller-owned workspace; see
    /// [`Knds::rds_with`] for the reuse contract.
    pub fn sds_traced_with(
        &self,
        ws: &mut KndsWorkspace,
        query_doc: &[ConceptId],
        k: usize,
        on_trace: impl FnMut(crate::trace::TraceEvent),
    ) -> QueryResult {
        self.run_hooked(ws, Kind::Sds, query_doc, k, None, Some(Box::new(on_trace)))
    }

    /// The single runner behind every entry point: normalizes the query
    /// into the workspace, runs the search over borrowed scratch, and
    /// returns the workspace clean (even the DRC DAG arena is round-
    /// tripped through it).
    fn run_hooked(
        &self,
        ws: &mut KndsWorkspace,
        kind: Kind,
        query: &[ConceptId],
        k: usize,
        on_final: Option<Box<dyn FnMut(RankedDoc) + '_>>,
        on_trace: Option<crate::trace::TraceSink<'_>>,
    ) -> QueryResult {
        assert!(k > 0, "k must be positive");
        let reused = ws.begin();
        let mut q = std::mem::take(&mut ws.query);
        crate::util::normalize_query_into(query, &mut q);
        assert!(!q.is_empty(), "query must contain at least one concept");
        // Open a dense-table epoch sized to this query's geometry (the SDS
        // reverse map needs the first-touch table; the unit engine never
        // needs Dijkstra distances).
        let rolled = ws.dense.begin_query(
            q.len(),
            self.ontology.len(),
            self.source.num_docs(),
            kind == Kind::Sds,
            false,
        );

        let drc = Drc::new(self.ontology).with_scratch(ws.take_dag());
        let mut search = Search {
            ont: self.ontology,
            source: self.source,
            drc,
            config: &self.config,
            kind,
            nq: q.len(),
            query: q,
            ws,
            heap: TopK::new(k),
            metrics: QueryMetrics { epoch_rollover: rolled as usize, ..QueryMetrics::default() },
            on_final,
            on_trace,
        };
        let mut result = search.run();

        let Search { drc, mut query, ws, .. } = search;
        query.clear();
        ws.query = query;
        ws.restore_dag(drc.into_scratch());
        ws.finish();
        result.metrics.workspace_reused = reused as usize;
        result.metrics.workspace_bytes = ws.footprint_bytes();
        result.metrics.table_bytes = ws.dense.footprint_bytes();
        result
    }
}

/// BFS state: `(origin query-concept index, node, has descended?)`.
/// Ascending states (`false`) may still move to parents; once a state
/// descends to a child the flag flips and only further descents are valid.
pub(crate) type State = (u32, ConceptId, bool);

struct Search<'a, 'w, S: IndexSource> {
    ont: &'a Ontology,
    source: &'a S,
    drc: Drc<'a>,
    config: &'a KndsConfig,
    kind: Kind,
    query: Vec<ConceptId>,
    nq: usize,
    /// All per-query maps and buffers live here, borrowed for this query.
    ws: &'w mut KndsWorkspace,
    heap: TopK,
    metrics: QueryMetrics,
    /// Progressive-result sink (Section 5.3, optimization 4).
    on_final: Option<Box<dyn FnMut(RankedDoc) + 'a>>,
    /// Trace sink (the Table 2 walkthrough).
    on_trace: Option<crate::trace::TraceSink<'a>>,
}

impl<S: IndexSource> Search<'_, '_, S> {
    fn run(&mut self) -> QueryResult {
        // Double-buffered frontier: `frontier` is the current level, `next`
        // the one being built; the buffers swap-and-clear between levels
        // instead of allocating a fresh Vec per level.
        let mut frontier = std::mem::take(&mut self.ws.frontier);
        let mut next = std::mem::take(&mut self.ws.next_frontier);
        frontier.clear();
        frontier.extend(
            self.query.iter().enumerate().map(|(i, &c)| (packing::narrow_u32(i), c, false)),
        );
        if self.config.dedup_visits {
            for &(origin, node, desc) in &frontier {
                self.ws.dense.mark_state(origin, node, desc);
            }
        }

        let mut level: u32 = 0;
        // cplx: bound depth — one BFS level per turn, exhausting within the diameter; cplx: counter levels
        loop {
            #[cfg(feature = "counters")]
            crate::counters::bump_levels();
            self.trace(|| crate::trace::TraceEvent::LevelStart { level, frontier: frontier.len() });
            // --- coverage + expansion (traversal bucket) --------------------
            let t0 = Instant::now();
            next.clear();
            let mut forced = false;
            for &(origin, node, descending) in &frontier {
                self.metrics.nodes_visited += 1;
                self.apply_coverage(origin, node, level);
                self.expand(origin, node, descending, &mut next);
            }
            if next.len() > self.config.queue_cap {
                forced = true;
                self.metrics.forced_rounds += 1;
            }
            self.metrics.traversal += t0.elapsed();
            self.metrics.levels += 1;

            // --- examination (distance-calculation bucket) ------------------
            let min_unexamined = self.examine(level, forced);

            // --- termination -------------------------------------------------
            let d_minus = min_unexamined.min(self.unseen_bound(level));
            if self.config.progressive {
                let final_now = self.heap.iter().filter(|&(_, d)| d <= d_minus).count();
                self.metrics.progressive_results = self.metrics.progressive_results.max(final_now);
                self.emit_final(d_minus);
            }
            if self.heap.is_full() && d_minus >= self.heap.threshold() {
                let threshold = self.heap.threshold();
                self.trace(|| crate::trace::TraceEvent::Terminated { level, d_minus, threshold });
                break;
            }
            if next.is_empty() {
                self.finalize_exhausted();
                break;
            }
            std::mem::swap(&mut frontier, &mut next);
            level += 1;
        }
        self.ws.frontier = frontier;
        self.ws.next_frontier = next;

        self.metrics.candidates_seen = self.ws.dense.cand.len();
        let results: Vec<RankedDoc> = std::mem::replace(&mut self.heap, TopK::new(1))
            .into_sorted()
            .into_iter()
            .map(|(doc, distance)| RankedDoc { doc, distance })
            .collect();
        // Flush the remaining results (already sorted) to the sink.
        if let Some(sink) = self.on_final.as_mut() {
            for &r in &results {
                if self.ws.dense.mark_doc(r.doc) {
                    sink(r);
                }
            }
        }
        QueryResult { results, metrics: std::mem::take(&mut self.metrics) }
    }

    /// Emits every held result whose distance is strictly below `d_minus`:
    /// no unexamined or unseen document can beat it, so it is final. Any
    /// later emission has distance ≥ `d_minus`, keeping the stream sorted.
    fn emit_final(&mut self, d_minus: f64) {
        if self.on_final.is_none() {
            return;
        }
        let mut ready = std::mem::take(&mut self.ws.order);
        ready.clear();
        ready.extend(
            self.heap
                .iter()
                .filter(|&(doc, d)| d < d_minus && !self.ws.dense.doc_marked(doc))
                .map(|(doc, d)| (d, doc)),
        );
        ready.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        if let Some(sink) = self.on_final.as_mut() {
            for &(distance, doc) in &ready {
                self.ws.dense.mark_doc(doc);
                sink(RankedDoc { doc, distance });
            }
        }
        ready.clear();
        self.ws.order = ready;
    }

    /// Applies the posting list of `node` to the candidate bookkeeping:
    /// forward coverage once per `(origin, node)`, reverse coverage (SDS)
    /// once per `node`.
    // cplx: bound nq*post — amortized: the dense pair marks admit each (origin,
    // concept) pair once per query, so the posting scans sum to nq·Σ|postings|
    fn apply_coverage(&mut self, origin: u32, node: ConceptId, level: u32) {
        let fwd_new = self.ws.dense.mark_pair(origin, node);
        let rev_new = self.kind == Kind::Sds && self.ws.dense.touch_first(node);
        if !fwd_new && !rev_new {
            return;
        }

        // Detach the postings buffer so the loop below can mutate the
        // candidate table without aliasing the workspace borrow.
        let mut postings = std::mem::take(&mut self.ws.postings_buf);
        let t = Instant::now();
        postings.clear();
        self.source.postings(node, &mut postings);
        self.metrics.io += t.elapsed();

        for &d in &postings {
            let slot = match self.ws.dense.slot_of(d) {
                Some(slot) => {
                    self.metrics.dense_hits += 1;
                    slot
                }
                None => {
                    let len = if self.kind == Kind::Sds {
                        packing::narrow_u32(self.source.doc_len(d))
                    } else {
                        0
                    };
                    self.ws.dense.insert_candidate(d, len)
                }
            };
            self.ws.dense.apply_to_candidate(slot, origin, level, fwd_new, rev_new);
        }
        self.ws.postings_buf = postings;
    }

    /// Pushes the valid-path neighbors of a state: once a traversal has
    /// descended it may not ascend again (the "{G,F} not pushed" rule of
    /// Example 4).
    fn expand(&mut self, origin: u32, node: ConceptId, descending: bool, next: &mut Vec<State>) {
        if !descending {
            for &p in self.ont.parents(node) {
                self.push_state((origin, p, false), next);
            }
        }
        for &c in self.ont.children(node) {
            self.push_state((origin, c, true), next);
        }
    }

    #[inline]
    fn push_state(&mut self, state: State, next: &mut Vec<State>) {
        if self.config.dedup_visits {
            let (origin, node, desc) = state;
            if !self.ws.dense.mark_state(origin, node, desc) {
                self.metrics.dense_hits += 1;
                return;
            }
        }
        next.push(state);
    }

    /// Sorts unexamined candidates by lower bound and examines while the
    /// error estimate allows (or unconditionally in a forced round).
    /// Returns the smallest lower bound left unexamined.
    fn examine(&mut self, level: u32, forced: bool) -> f64 {
        let t0 = Instant::now();
        let mut order = std::mem::take(&mut self.ws.order);
        order.clear();
        order.extend(
            self.ws
                .dense
                .cand_docs
                .iter()
                .zip(self.ws.dense.cand.iter())
                .filter(|(_, c)| !c.examined)
                .map(|(&d, c)| (self.lower_bound(c, level), d)),
        );
        order.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        self.metrics.traversal += t0.elapsed();

        if self.on_trace.is_some() {
            for &(_, doc) in &order {
                let entry = self.ws.dense.slot_of(doc).and_then(|s| self.ws.dense.candidate(s));
                if let Some(c) = entry {
                    let (covered, partial) = (c.covered, c.partial);
                    self.trace(|| crate::trace::TraceEvent::Candidate { doc, covered, partial });
                }
            }
        }

        let mut min_unexamined = f64::INFINITY;
        for &(lb, doc) in &order {
            if self.heap.is_full() && lb >= self.heap.threshold() {
                // Optimization 1 (Section 5.3): nothing below this bound can
                // enter the top-k; the sorted order makes the rest moot too.
                min_unexamined = lb;
                break;
            }
            // `order` was built from the candidate rows, so the lookup cannot
            // miss; degrade to skipping the entry rather than panicking.
            let Some(slot) = self.ws.dense.slot_of(doc) else {
                debug_assert!(false, "ordered candidate {doc:?} missing from the slot map");
                continue;
            };
            let Some(c) = self.ws.dense.candidate(slot) else {
                debug_assert!(false, "slot of {doc:?} points past the candidate rows");
                continue;
            };
            let eps = self.error_estimate(c, lb);
            if !forced && eps > self.config.error_threshold {
                min_unexamined = lb;
                break;
            }
            let complete = self.is_complete(c);
            let partial = self.partial_distance(c);
            let (exact, via_drc) = self.exact_distance(doc, complete, partial);
            if let Some(cand) = self.ws.dense.candidate_mut(slot) {
                cand.examined = true;
            }
            self.metrics.docs_examined += 1;
            self.heap.offer(doc, exact);
            self.trace(|| crate::trace::TraceEvent::Examined {
                doc,
                lower_bound: lb,
                error: eps,
                exact,
                via_drc,
            });
        }
        order.clear();
        self.ws.order = order;
        let threshold = self.heap.threshold();
        self.trace(|| crate::trace::TraceEvent::ExamineBreak { min_unexamined, threshold });
        min_unexamined
    }

    /// Emits a trace event if a sink is attached (the closure keeps event
    /// construction off the hot path).
    #[inline]
    fn trace(&mut self, event: impl FnOnce() -> crate::trace::TraceEvent) {
        if let Some(sink) = self.on_trace.as_mut() {
            sink(event());
        }
    }

    /// Equation 6 (RDS) / Equation 8 (SDS): partial distance plus `l + 1`
    /// for every uncovered term.
    // bound: proven — nq ≥ 1 (asserted at query entry) and every counter is
    // bounded by nq · max ontology depth, far below the 2^53 f64 mantissa
    fn lower_bound(&self, c: &Candidate, level: u32) -> f64 {
        let next = (level + 1) as u64;
        let fwd = c.partial + (self.nq as u64 - c.covered as u64) * next;
        match self.kind {
            Kind::Rds => fwd as f64,
            Kind::Sds => {
                let rev = c.rev_sum + (c.doc_len as u64 - c.rev_covered as u64) * next;
                fwd as f64 / self.nq as f64 + rev as f64 / c.doc_len.max(1) as f64
            }
        }
    }

    /// The partial (currently known) distance — Equation 5 / 7.
    // bound: proven — nq ≥ 1 (asserted at query entry); partial and rev_sum
    // are sums of ≤ nq·doc_len hop counts, far below the 2^53 f64 mantissa
    fn partial_distance(&self, c: &Candidate) -> f64 {
        match self.kind {
            Kind::Rds => c.partial as f64,
            Kind::Sds => {
                c.partial as f64 / self.nq as f64 + c.rev_sum as f64 / c.doc_len.max(1) as f64
            }
        }
    }

    /// Equation 9: `εd = 1 − Dpartial / D⁻`.
    fn error_estimate(&self, c: &Candidate, lb: f64) -> f64 {
        if lb <= 0.0 {
            return 0.0;
        }
        1.0 - self.partial_distance(c) / lb
    }

    /// Whether the candidate's partial information already determines its
    /// exact distance (Section 5.3, optimization 3).
    fn is_complete(&self, c: &Candidate) -> bool {
        match self.kind {
            Kind::Rds => c.covered as usize == self.nq,
            Kind::Sds => c.covered as usize == self.nq && c.rev_covered == c.doc_len,
        }
    }

    /// Smallest possible distance of a document no expansion has seen yet:
    /// every term is uncovered, so every term contributes at least `l + 1`.
    // bound: proven — nq is the query concept count, far below 2^53
    fn unseen_bound(&self, level: u32) -> f64 {
        let next = (level + 1) as f64;
        match self.kind {
            Kind::Rds => self.nq as f64 * next,
            Kind::Sds => 2.0 * next,
        }
    }

    /// Exact distance of `doc` and whether DRC was needed: complete partial
    /// information short-circuits (Section 5.3, optimization 3), otherwise
    /// a DRC probe runs (rebuilding the workspace's DAG arena in place).
    /// `complete` and `partial` are precomputed by the caller from the
    /// candidate entry (see [`Search::is_complete`]).
    fn exact_distance(&mut self, doc: DocId, complete: bool, partial: f64) -> (f64, bool) {
        if complete {
            self.metrics.exact_from_partial += 1;
            return (partial, false);
        }

        let t = Instant::now();
        self.ws.concepts_buf.clear();
        self.source.doc_concepts(doc, &mut self.ws.concepts_buf);
        self.metrics.io += t.elapsed();

        let t = Instant::now();
        let exact = match self.kind {
            Kind::Rds => {
                let d = self.drc.document_query_distance(&self.ws.concepts_buf, &self.query);
                if d == cbr_dradix::INFINITE {
                    f64::INFINITY
                } else {
                    d as f64
                }
            }
            Kind::Sds => self.drc.document_document_distance(&self.ws.concepts_buf, &self.query),
        };
        self.metrics.distance_calc += t.elapsed();
        self.metrics.drc_calls += 1;
        (exact, true)
    }

    /// The expansion exhausted every reachable state: every candidate's
    /// coverage is complete, so partial sums *are* the exact distances.
    /// Documents never seen contain no reachable concepts (i.e. none at
    /// all) and sit at infinite distance.
    fn finalize_exhausted(&mut self) {
        let t0 = Instant::now();
        let mut docs = std::mem::take(&mut self.ws.docs_buf);
        docs.clear();
        docs.extend(
            self.ws
                .dense
                .cand_docs
                .iter()
                .zip(self.ws.dense.cand.iter())
                .filter(|(_, c)| !c.examined)
                .map(|(&d, _)| d),
        );
        let finalized = docs.len();
        self.trace(|| crate::trace::TraceEvent::Exhausted { finalized });
        for &doc in &docs {
            let Some(slot) = self.ws.dense.slot_of(doc) else {
                continue;
            };
            let Some(exact) = self.ws.dense.candidate(slot).map(|c| {
                debug_assert_eq!(c.covered as usize, self.nq, "exhaustion implies full coverage");
                self.partial_distance(c)
            }) else {
                continue;
            };
            self.metrics.exact_from_partial += 1;
            self.metrics.docs_examined += 1;
            if let Some(c) = self.ws.dense.candidate_mut(slot) {
                c.examined = true;
            }
            self.heap.offer(doc, exact);
        }
        docs.clear();
        self.ws.docs_buf = docs;
        if !self.heap.is_full() {
            for i in 0..self.source.num_docs() {
                let d = DocId::from_index(i);
                if self.ws.dense.slot_of(d).is_none() && self.source.is_live(d) {
                    self.heap.offer(d, f64::INFINITY);
                }
            }
        }
        self.metrics.distance_calc += t0.elapsed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_corpus::Corpus;
    use cbr_index::MemorySource;
    use cbr_ontology::fixture;

    /// A small collection over the Figure 3 ontology.
    fn setup() -> (fixture::Figure3, Corpus, MemorySource) {
        let fig = fixture::figure3();
        let c = |n: &str| fig.concept(n);
        let corpus = Corpus::from_concept_sets(vec![
            (vec![c("F"), c("R"), c("T"), c("V")], 0), // the paper's example doc
            (vec![c("I"), c("L"), c("U")], 0),         // equals the example query
            (vec![c("M"), c("N")], 0),
            (vec![c("C")], 0),
            (vec![c("G"), c("H")], 0),
            (vec![c("U"), c("L")], 0),
        ]);
        let source = MemorySource::build(&corpus, fig.ontology.len());
        (fig, corpus, source)
    }

    #[test]
    fn rds_finds_exact_match_first() {
        let (fig, _corpus, source) = setup();
        let knds = Knds::new(&fig.ontology, &source, KndsConfig::default());
        let q = fig.example_query(); // {I, L, U} == doc 1
        let r = knds.rds(&q, 2);
        assert_eq!(r.results[0].doc, DocId(1));
        assert_eq!(r.results[0].distance, 0.0);
        assert_eq!(r.results.len(), 2);
    }

    #[test]
    fn rds_distances_match_drc() {
        let (fig, corpus, source) = setup();
        let knds = Knds::new(&fig.ontology, &source, KndsConfig::default());
        let mut drc = Drc::new(&fig.ontology);
        let q = fig.example_query();
        let r = knds.rds(&q, 6);
        assert_eq!(r.results.len(), 6);
        for rd in &r.results {
            let doc = corpus.get(rd.doc);
            let expect = drc.document_query_distance(doc.concepts(), &q);
            assert_eq!(rd.distance, expect as f64, "distance of {:?}", rd.doc);
        }
        // Ranking is non-decreasing.
        for w in r.results.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn example_doc_query_distance_is_seven() {
        let (fig, _corpus, source) = setup();
        let knds = Knds::new(&fig.ontology, &source, KndsConfig::default());
        let r = knds.rds(&fig.example_query(), 6);
        let d0 = r.results.iter().find(|r| r.doc == DocId(0)).unwrap();
        assert_eq!(d0.distance, 7.0, "Example 1 of the paper");
    }

    #[test]
    fn sds_self_similarity_is_zero() {
        let (fig, _corpus, source) = setup();
        let knds = Knds::new(&fig.ontology, &source, KndsConfig::default());
        let q = fig.example_query();
        let r = knds.sds(&q, 1);
        assert_eq!(r.results[0].doc, DocId(1));
        assert_eq!(r.results[0].distance, 0.0);
    }

    #[test]
    fn k_larger_than_collection_returns_everything() {
        let (fig, _corpus, source) = setup();
        let knds = Knds::new(&fig.ontology, &source, KndsConfig::default());
        let r = knds.rds(&[fig.concept("U")], 100);
        assert_eq!(r.results.len(), 6, "all documents returned");
    }

    #[test]
    fn duplicate_query_concepts_collapse() {
        let (fig, _corpus, source) = setup();
        let knds = Knds::new(&fig.ontology, &source, KndsConfig::default());
        let u = fig.concept("U");
        let a = knds.rds(&[u, u, u], 3);
        let b = knds.rds(&[u], 3);
        for (x, y) in a.results.iter().zip(b.results.iter()) {
            assert_eq!(x.doc, y.doc);
            assert_eq!(x.distance, y.distance);
        }
    }

    #[test]
    #[should_panic(expected = "at least one concept")]
    fn empty_query_panics() {
        let (fig, _corpus, source) = setup();
        Knds::new(&fig.ontology, &source, KndsConfig::default()).rds(&[], 1);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let (fig, _corpus, source) = setup();
        Knds::new(&fig.ontology, &source, KndsConfig::default()).rds(&[fig.concept("U")], 0);
    }

    #[test]
    fn metrics_are_populated() {
        let (fig, _corpus, source) = setup();
        let knds = Knds::new(&fig.ontology, &source, KndsConfig::default());
        let r = knds.rds(&fig.example_query(), 2);
        assert!(r.metrics.nodes_visited > 0);
        assert!(r.metrics.levels > 0);
        assert!(r.metrics.docs_examined >= 2);
        assert!(r.metrics.candidates_seen >= r.metrics.docs_examined);
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs() {
        let (fig, _corpus, source) = setup();
        let knds = Knds::new(&fig.ontology, &source, KndsConfig::default());
        let q1 = fig.example_query();
        let q2 = vec![fig.concept("M"), fig.concept("V")];
        let mut ws = KndsWorkspace::new();
        // Interleave RDS and SDS on one workspace; each must equal a
        // fresh-workspace run exactly.
        for (i, q) in [&q1, &q2, &q1].iter().enumerate() {
            let a = knds.rds_with(&mut ws, q, 4);
            let b = knds.rds(q, 4);
            assert_eq!(a.results, b.results, "RDS round {i} diverged under reuse");
            let a = knds.sds_with(&mut ws, q, 4);
            let b = knds.sds(q, 4);
            assert_eq!(a.results, b.results, "SDS round {i} diverged under reuse");
        }
        assert!(ws.footprint_bytes() > 0, "workspace warmed up");
    }

    #[test]
    fn steady_state_queries_stop_growing_the_workspace() {
        let (fig, _corpus, source) = setup();
        let knds = Knds::new(&fig.ontology, &source, KndsConfig::default());
        let q1 = fig.example_query();
        let q2 = vec![fig.concept("M"), fig.concept("V")];
        let mut ws = KndsWorkspace::new();
        // Warm-up pass over every query shape.
        let cold = knds.rds_with(&mut ws, &q1, 4);
        assert_eq!(cold.metrics.workspace_reused, 0, "first query is cold");
        knds.sds_with(&mut ws, &q1, 4);
        knds.rds_with(&mut ws, &q2, 4);
        knds.sds_with(&mut ws, &q2, 4);
        let warm = ws.footprint_bytes();
        // Steady state: repeated queries must not grow any buffer.
        for _ in 0..3 {
            let r = knds.rds_with(&mut ws, &q1, 4);
            assert_eq!(r.metrics.workspace_reused, 1);
            assert_eq!(r.metrics.workspace_bytes, warm, "RDS grew the workspace");
            let r = knds.sds_with(&mut ws, &q2, 4);
            assert_eq!(r.metrics.workspace_bytes, warm, "SDS grew the workspace");
        }
    }
}
