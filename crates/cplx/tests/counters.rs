//! C05 dynamic cross-validation: the `counters` cfg feature threads
//! per-loop iteration counters through the kNDS and D-Radix hot loops
//! (each marked `// cplx: counter <name>` in the source), and these
//! properties assert that the *observed* iteration counts stay within a
//! small constant factor of the *statically proven* symbolic bounds for
//! arbitrary generated ontologies, corpora, and queries.
//!
//! Instance parameters mirror the symbolic atoms of `cbr_cplx::sym`:
//! `P` is the total number of ranked Dewey addresses of the concept
//! sets fed to the engine (the paper's `|Pd| + |Pq|`), and `depth` is
//! the longest Dewey address in the ontology (the radix label length,
//! which also caps the BFS diameter from any concept at `2·depth`).

use cbr_corpus::{Corpus, CorpusGenerator, CorpusProfile};
use cbr_dradix::counters as dag_counters;
use cbr_dradix::DRadixDag;
use cbr_index::MemorySource;
use cbr_knds::counters as knds_counters;
use cbr_knds::{Knds, KndsConfig, WeightedKnds};
use cbr_ontology::{ConceptId, EdgeWeights, GeneratorConfig, Ontology, OntologyGenerator};
use proptest::prelude::*;

fn ontology(seed: u64) -> Ontology {
    OntologyGenerator::new(GeneratorConfig::small(120).with_seed(seed)).generate()
}

fn corpus(ont: &Ontology, seed: u64) -> Corpus {
    let profile = CorpusProfile::radio_like()
        .with_num_docs(30)
        .with_mean_concepts(6.0)
        .with_seed(seed.wrapping_add(17));
    CorpusGenerator::new(ont, profile).generate()
}

fn pick_concepts(ont: &Ontology, picks: &[u32]) -> Vec<ConceptId> {
    let mut v: Vec<ConceptId> = picks.iter().map(|&p| ConceptId(p % ont.len() as u32)).collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Longest Dewey address in the ontology: the `depth` atom.
fn max_depth(ont: &Ontology) -> u64 {
    let paths = ont.path_table();
    (0..ont.len() as u32)
        .flat_map(|c| paths.addresses(ConceptId(c)))
        .map(|a| a.len() as u64)
        .max()
        .unwrap_or(0)
}

/// Total ranked addresses of a concept list: the `P` atom contribution.
fn total_addresses(ont: &Ontology, concepts: &[ConceptId]) -> u64 {
    let paths = ont.path_table();
    concepts.iter().map(|&c| paths.path_count(c) as u64).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// D-Radix build: the staging loop runs exactly `P` times (its
    /// static nest bound is `deg·P`), the suffix worklist pops at most
    /// `O(depth²)` items per inserted address, and each pop descends at
    /// most `depth` radix edges.
    #[test]
    fn dradix_counters_respect_static_bounds(
        seed in 0u64..200,
        doc_picks in prop::collection::vec(0u32..10_000, 1..6),
        query_picks in prop::collection::vec(0u32..10_000, 1..4),
    ) {
        let ont = ontology(seed);
        let doc = pick_concepts(&ont, &doc_picks);
        let query = pick_concepts(&ont, &query_picks);
        let p = total_addresses(&ont, &doc) + total_addresses(&ont, &query);
        let depth = max_depth(&ont);

        dag_counters::reset();
        let mut dag = DRadixDag::new();
        dag.build_into(&ont, &doc, &query);
        dag.tune();
        let obs = dag_counters::snapshot();

        // C01/C02: the staging nest is O(deg·P); the loop body runs
        // exactly once per ranked address of d ∪ q.
        prop_assert_eq!(obs.addrs, p);
        // C04: the worklist holds at most O(depth²) items per inserted
        // address (each split requeues two strict subranges).
        prop_assert!(
            obs.suffix_pops <= 2 * p * (depth + 1) * (depth + 1),
            "suffix_pops {} vs bound 2·P·(depth+1)² = {}",
            obs.suffix_pops,
            2 * p * (depth + 1) * (depth + 1)
        );
        // C01: the radix descent consumes ≥ 1 label component per turn,
        // so each popped item drives at most depth+1 turns.
        prop_assert!(
            obs.radix_steps <= obs.suffix_pops * (depth + 2),
            "radix_steps {} vs bound pops·(depth+2) = {}",
            obs.radix_steps,
            obs.suffix_pops * (depth + 2)
        );
    }

    /// kNDS BFS: one level per turn, exhausting within the ontology
    /// diameter (≤ 2·depth: any two concepts connect through a common
    /// root-path prefix).
    #[test]
    fn knds_level_counter_respects_static_bound(
        seed in 0u64..200,
        query_picks in prop::collection::vec(0u32..10_000, 1..4),
        k in 1usize..6,
    ) {
        let ont = ontology(seed);
        let corpus = corpus(&ont, seed);
        let source = MemorySource::build(&corpus, ont.len());
        let q = pick_concepts(&ont, &query_picks);
        let depth = max_depth(&ont);

        knds_counters::reset();
        let engine = Knds::new(&ont, &source, KndsConfig::default());
        let _ = engine.rds(&q, k);
        let obs = knds_counters::snapshot();
        prop_assert!(
            obs.levels <= 2 * depth + 2,
            "levels {} vs bound 2·depth+2 = {}",
            obs.levels,
            2 * depth + 2
        );
    }

    /// Weighted kNDS under uniform weights: the bucket loop drains one
    /// distance bucket per turn and distances span the same diameter.
    #[test]
    fn weighted_bucket_counter_respects_static_bound(
        seed in 0u64..200,
        query_picks in prop::collection::vec(0u32..10_000, 1..4),
        k in 1usize..6,
    ) {
        let ont = ontology(seed);
        let corpus = corpus(&ont, seed);
        let source = MemorySource::build(&corpus, ont.len());
        let weights = EdgeWeights::uniform(&ont);
        let q = pick_concepts(&ont, &query_picks);
        let depth = max_depth(&ont);

        knds_counters::reset();
        let engine = WeightedKnds::new(&ont, &weights, &source, KndsConfig::default());
        let _ = engine.rds(&q, k);
        let obs = knds_counters::snapshot();
        prop_assert!(
            obs.buckets <= 2 * depth + 2,
            "buckets {} vs bound 2·depth+2 = {}",
            obs.buckets,
            2 * depth + 2
        );
    }
}
