//! `cbr-sched`: a dependency-free, loom-style model checker for the
//! workspace's concurrent paths.
//!
//! Three layers, mirroring the shape of `loom`/`shuttle` but small enough
//! to build offline:
//!
//! * [`sync`] — a facade over the concurrency primitives the engine uses
//!   (`Mutex`, `RwLock`, `Condvar`, atomics, `Arc`, `spawn`/`scope`, and a
//!   `SegQueue` shim). By default it compiles to thin wrappers over the
//!   real `std`/`crossbeam` primitives; under the `model` cargo feature it
//!   compiles to instrumented versions whose every visible operation is a
//!   *sync point* controlled by the scheduler. Instrumented primitives
//!   still pass through to the real primitives on threads that are not
//!   part of an active model execution, so a workspace build with `model`
//!   unified on (e.g. `cargo test` building the harness crate) behaves
//!   identically outside [`explore`].
//! * [`rt`] — the deterministic cooperative runtime: one OS thread runs at
//!   a time, every other modeled thread is parked at its next pending
//!   operation, and a coordinator picks which pending operation executes
//!   next. Blocking semantics (lock contention, joins, condvar waits) are
//!   modeled in the runtime's resource tables, so the real primitives
//!   underneath are always uncontended.
//! * [`explore`] — schedule enumeration: bounded exhaustive DFS with a
//!   sleep-set (DPOR-lite) reduction, falling back to a seeded random walk
//!   when the budget is smaller than the schedule tree. Every finding
//!   (deadlock, lock-order cycle, double lock, pool leak, harness
//!   invariant failure, panic) carries a schedule ID that [`explore::replay`]
//!   re-executes step for step.
//!
//! See `DESIGN.md` §9 for what is and is not modeled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod explore;
pub mod replay;
pub mod rt;
pub mod strategy;
pub mod sync;
