//! Seeded-violation fixture: DAG build with an unsized label arena, a
//! hand-packed slot entry, and a recursive insertion walk.

/// Build entry point; seeded B03 (unsized arena growth) and seeded B02
/// (overflow-capable offset packing outside the checked helpers).
pub fn build_into(addrs: &[&[u32]], epoch: u32) -> u64 {
    let mut labels = Vec::new();
    for addr in addrs {
        labels.extend_from_slice(addr);
    }
    let packed = (epoch as u64) << 32 | labels.len() as u64;
    descend(labels.len() as u64) + packed
}

/// Seeded B04: mutual recursion on the build path.
fn descend(n: u64) -> u64 {
    if n == 0 {
        0
    } else {
        ascend(n - 1)
    }
}

fn ascend(n: u64) -> u64 {
    descend(n)
}
