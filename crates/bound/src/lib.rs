//! `cbr-bound`: whole-program static numeric-safety and resource-bound
//! analysis over the packed hot path.
//!
//! The query path packs epochs, slots, and CSR offsets into narrow
//! integers (`stamp << 32 | slot`, `u32` fence posts over `usize`
//! sums) and ranks documents with `f64` scores derived from 64-bit
//! counters. Each of those moves is safe only under an invariant the
//! type system cannot see. This crate is the static complement of the
//! dynamic checks (flow F-rules, audit A01): it reuses `cbr-flow`'s
//! scanner, item parser, and call graph as a library, extracts
//! per-function numeric [`summary`] sites (casts with source-type
//! evidence, shifts, buffer growth in loops, divisions with guard
//! detection), and checks the [`rules`] over everything reachable from
//! the snapshot query roots:
//!
//! * **B01** — no potentially-truncating `as` cast on the query path;
//! * **B02** — overflow-capable shifts confined to `cbr_index::packing`;
//! * **B03** — hot-path buffers grow only via sized patterns;
//! * **B04** — the hot path is proven recursion-free (call-graph SCCs);
//! * **B05** — float hygiene: guarded divisions, no lossy `as f64` on
//!   64-bit integers.
//!
//! Findings ratchet through `bound.allow` (same exact-count grammar as
//! `flow.allow`); the seeded fixture tree under `crates/bound/fixtures`
//! proves every rule can fire.
//!
//! ```sh
//! cargo run -p cbr-bound                          # analyze the workspace
//! cargo run -p cbr-bound -- --json                # machine-readable report
//! cargo run -p cbr-bound -- --fixtures --expect-findings  # prove non-vacuity
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rules;
pub mod summary;

pub use cbr_flow::allowlist;
use cbr_flow::graph::{CrateDeps, Graph};
use cbr_flow::parser::Workspace;
use cbr_flow::report::Report;
use cbr_flow::scanner::SourceFile;
use cbr_flow::ParsedWorkspace;
use std::path::Path;

/// Analysis statistics: graph size plus the B04 recursion-free proof.
#[derive(Debug)]
pub struct BoundStats {
    /// Functions with bodies in the parsed workspace.
    pub functions: usize,
    /// Call-graph edges the propagation ran over.
    pub edges: usize,
    /// B04 proof statistics.
    pub b04: rules::RuleStats,
}

/// Findings (allowlist applied) plus analysis statistics.
#[derive(Debug)]
pub struct BoundReport {
    /// Findings and passed-rule lines.
    pub report: Report,
    /// Graph size and the B04 proof statistics.
    pub stats: BoundStats,
}

impl BoundReport {
    /// Human-readable report with the proof summary line.
    pub fn render_text(&self) -> String {
        format!(
            "{}bound: {} fns, {} edges; B04 proof: {} roots, {} reachable fns, \
             {} cyclic fns\n",
            self.report.render_text(),
            self.stats.functions,
            self.stats.edges,
            self.stats.b04.b04_roots,
            self.stats.b04.b04_reachable_fns,
            self.stats.b04.b04_cyclic_fns,
        )
    }

    /// JSON report: the shared [`Report`] shape plus the proof stats. A
    /// clean run is only meaningful together with non-vacuous stats —
    /// `"b04_roots"` must cover every root spec and `"b04_cyclic_fns"`
    /// must be zero for the recursion-free claim to hold.
    pub fn render_json(&self) -> String {
        let base = self.report.render_json();
        let trimmed = base.trim_end().trim_end_matches('}').trim_end().trim_end_matches(',');
        format!(
            "{trimmed},\n  \"functions\": {},\n  \"edges\": {},\n  \"b04_roots\": {},\n  \
             \"b04_reachable_fns\": {},\n  \"b04_cyclic_fns\": {}\n}}\n",
            self.stats.functions,
            self.stats.edges,
            self.stats.b04.b04_roots,
            self.stats.b04.b04_reachable_fns,
            self.stats.b04.b04_cyclic_fns,
        )
    }
}

/// Analyzes scanned sources with an allowlist under a crate-dependency
/// constraint (the graph resolves calls through it; the numeric rules
/// themselves are scope-free).
pub fn analyze(files: Vec<SourceFile>, allow: &str, origin: &str, deps: &CrateDeps) -> BoundReport {
    let ws = Workspace::parse(files);
    let graph = Graph::build(&ws, deps);
    let pw = ParsedWorkspace { ws, deps: deps.clone(), graph };
    analyze_parsed(&pw, allow, origin)
}

/// [`analyze`] over an already-parsed workspace (the parse-once path).
pub fn analyze_parsed(pw: &ParsedWorkspace, allow: &str, origin: &str) -> BoundReport {
    let (ws, graph) = (&pw.ws, &pw.graph);
    let fx = summary::extract(ws);
    let (findings, b04) = rules::run(ws, graph, &fx);
    let findings = allowlist::ratchet(findings, allow, origin);

    let mut report = Report { findings, passed: Vec::new() };
    if report.ok() {
        for rule in ["B01", "B02", "B03", "B04", "B05"] {
            report.passed.push(format!(
                "bound {rule} ({} fns, {} roots, {} reachable)",
                ws.fns.len(),
                b04.b04_roots,
                b04.b04_reachable_fns
            ));
        }
    }
    BoundReport {
        report,
        stats: BoundStats { functions: graph.stats.functions, edges: graph.stats.edges, b04 },
    }
}

/// Runs the bound analysis over the real workspace with `bound.allow`.
pub fn run_workspace(root: &Path) -> BoundReport {
    run_parsed(root, &ParsedWorkspace::load(root))
}

/// [`run_workspace`] over a shared [`ParsedWorkspace`].
pub fn run_parsed(root: &Path, pw: &ParsedWorkspace) -> BoundReport {
    let allow = allowlist::load(root, "bound.allow");
    analyze_parsed(pw, &allow, "bound.allow")
}

/// Runs the bound analysis over the seeded-violation fixture tree (no
/// allowlist — every seeded finding must surface — and no dependency
/// constraint, since the fixture tree has no manifests).
pub fn run_fixtures(root: &Path) -> BoundReport {
    analyze(
        cbr_flow::collect_sources(&root.join("crates/bound/fixtures")),
        "",
        "bound.allow",
        &CrateDeps::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_flow::workspace_root;

    /// The bound lint must be silent on its own tree modulo `bound.allow`.
    #[test]
    fn current_tree_is_clean() {
        let br = run_workspace(&workspace_root());
        assert!(br.report.ok(), "bound findings on the current tree:\n{}", br.render_text());
    }

    /// The acceptance gate: the numeric-safety proof is non-vacuous —
    /// every root spec matched, a real slice of the workspace is
    /// reachable from them, and none of it recurses.
    #[test]
    fn b04_proves_the_recursion_free_hot_path() {
        let br = run_workspace(&workspace_root());
        assert_eq!(
            br.stats.b04.b04_roots,
            rules::ROOT_SPECS.len(),
            "every hot-path root spec must match:\n{}",
            br.render_text()
        );
        assert_eq!(
            br.stats.b04.b04_cyclic_fns,
            0,
            "the query path must be recursion-free:\n{}",
            br.render_text()
        );
        assert!(
            br.stats.b04.b04_reachable_fns >= 30,
            "the proof must cover the kNDS + D-Radix machinery, got {} fns",
            br.stats.b04.b04_reachable_fns
        );
    }

    /// The seeded fixture tree fires every rule with exact counts —
    /// the non-vacuity proof `--expect-findings` builds on, pinned
    /// tighter here so a rule silently losing a case regresses loudly.
    #[test]
    fn fixtures_fire_every_rule_with_exact_counts() {
        let br = run_fixtures(&workspace_root());
        let count = |rule: &str| br.report.findings.iter().filter(|f| f.rule == rule).count();
        assert_eq!(count("B01"), 3, "narrowing + sign + bare directive:\n{}", br.render_text());
        assert_eq!(count("B02"), 2, "packing shift + offset shift");
        assert_eq!(count("B03"), 2, "push loop + extend loop");
        assert_eq!(count("B04"), 1, "the DAG walk cycle");
        assert_eq!(count("B05"), 3, "unguarded division + two wide casts");
        assert_eq!(count("BOUND"), 0, "fixture roots keep the meta-rule quiet");
        assert_eq!(br.stats.b04.b04_roots, rules::ROOT_SPECS.len());
        assert_eq!(br.stats.b04.b04_cyclic_fns, 2);
    }

    #[test]
    fn json_report_carries_the_proof_stats() {
        let br = run_workspace(&workspace_root());
        let json = br.render_json();
        for key in ["\"ok\"", "\"b04_roots\"", "\"b04_reachable_fns\"", "\"b04_cyclic_fns\""] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
    }
}
