//! `cbr-cplx` CLI: run the static complexity analysis.
//!
//! ```sh
//! cbr-cplx                           # analyze the real workspace (cplx.allow applied)
//! cbr-cplx --json                    # machine-readable report with the C03 proof stats
//! cbr-cplx --fixtures                # analyze the seeded-violation fixture tree
//! cbr-cplx --fixtures --expect-findings  # assert every rule C01-C05 fires
//! ```
//!
//! Exit codes: `0` clean (or, with `--expect-findings`, all rules
//! fired), `1` findings (or a missing rule), `2` usage error.

#![forbid(unsafe_code)]

use cbr_cplx::{run_fixtures, run_workspace};
use cbr_flow::workspace_root;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cbr-cplx [--json] [--fixtures] [--expect-findings]\n\n\
         options:\n  \
         --json             emit the machine-readable report\n  \
         --fixtures         analyze the seeded-violation fixture tree instead of the workspace\n  \
         --expect-findings  fail unless every rule C01-C05 produced at least one finding"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut json = false;
    let mut fixtures = false;
    let mut expect_findings = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--fixtures" => fixtures = true,
            "--expect-findings" => expect_findings = true,
            "--help" | "-h" => {
                let _ = usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let root = workspace_root();
    let cr = if fixtures { run_fixtures(&root) } else { run_workspace(&root) };

    if json {
        print!("{}", cr.render_json());
    } else {
        print!("{}", cr.render_text());
    }

    if expect_findings {
        let missing: Vec<&str> = ["C01", "C02", "C03", "C04", "C05"]
            .into_iter()
            .filter(|rule| !cr.report.findings.iter().any(|f| f.rule == *rule))
            .collect();
        if missing.is_empty() {
            eprintln!("expect-findings: all rules C01-C05 fired");
            ExitCode::SUCCESS
        } else {
            eprintln!("expect-findings: rule(s) {} produced no findings", missing.join(", "));
            ExitCode::FAILURE
        }
    } else if cr.report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
