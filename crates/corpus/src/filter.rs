//! Concept eligibility filters (Section 6.1).
//!
//! The paper excludes two kinds of concepts before indexing and querying:
//!
//! * **generic concepts** via a depth threshold — "we excluded all concepts
//!   in a depth level that is lower than 4", which still retains over 99%
//!   of SNOMED-CT concepts (generic nodes like *disease* sit near the
//!   root);
//! * **very common concepts** via a collection-frequency threshold — the
//!   default is `µ + σ` of the per-concept document frequencies, which
//!   retains about 92% of the concepts (terms like *blood* appear in
//!   nearly every note and carry no ranking signal).

use crate::document::Corpus;
use cbr_ontology::{ConceptId, Ontology};

/// Configuration for [`ConceptFilter`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterConfig {
    /// Minimum depth (inclusive) a concept must have to be eligible.
    /// The paper's default is 4.
    pub min_depth: u32,
    /// Number of standard deviations above the mean collection frequency at
    /// which a concept is considered "too common". The paper uses `µ + σ`,
    /// i.e. 1.0. Set to `f64::INFINITY` to disable frequency filtering.
    pub cf_sigma: f64,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig { min_depth: 4, cf_sigma: 1.0 }
    }
}

/// A precomputed eligibility predicate over concepts.
#[derive(Debug, Clone)]
pub struct ConceptFilter {
    eligible: Vec<bool>,
    cf_threshold: f64,
    num_eligible: usize,
}

impl ConceptFilter {
    /// Builds the filter for `ont` and `corpus` under `config`.
    ///
    /// The frequency statistics (µ, σ) are estimated over concepts that
    /// occur in the corpus at least once; concepts absent from the corpus
    /// are eligible by depth alone (they can still appear in queries).
    pub fn build(ont: &Ontology, corpus: &Corpus, config: FilterConfig) -> ConceptFilter {
        let freq = corpus.concept_frequencies();
        let (mean, sd) = mean_sd(freq.values().map(|&v| v as f64));
        let cf_threshold = mean + config.cf_sigma * sd;

        let mut eligible = vec![false; ont.len()];
        let mut num_eligible = 0;
        for c in ont.concepts() {
            if ont.depth(c) < config.min_depth {
                continue;
            }
            let cf = freq.get(&c).copied().unwrap_or(0) as f64;
            if config.cf_sigma.is_finite() && cf > cf_threshold {
                continue;
            }
            eligible[c.index()] = true;
            num_eligible += 1;
        }
        ConceptFilter { eligible, cf_threshold, num_eligible }
    }

    /// A filter that admits every concept of `ont` (used by tests and by
    /// callers that pre-filter their data).
    pub fn accept_all(ont: &Ontology) -> ConceptFilter {
        ConceptFilter {
            eligible: vec![true; ont.len()],
            cf_threshold: f64::INFINITY,
            num_eligible: ont.len(),
        }
    }

    /// Whether concept `c` survives the thresholds.
    #[inline]
    pub fn allows(&self, c: ConceptId) -> bool {
        self.eligible.get(c.index()).copied().unwrap_or(false)
    }

    /// The computed collection-frequency cutoff (`µ + cf_sigma·σ`).
    pub fn cf_threshold(&self) -> f64 {
        self.cf_threshold
    }

    /// Number of eligible concepts.
    pub fn num_eligible(&self) -> usize {
        self.num_eligible
    }

    /// Fraction of the ontology's concepts that remain eligible.
    pub fn retention(&self) -> f64 {
        self.num_eligible as f64 / self.eligible.len() as f64
    }

    /// Applies the filter to a whole corpus (documents keep their ids).
    pub fn apply(&self, corpus: &Corpus) -> Corpus {
        corpus.retained(|c| self.allows(c))
    }
}

fn mean_sd(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut n = 0f64;
    let mut sum = 0f64;
    let mut sum_sq = 0f64;
    for v in values {
        n += 1.0;
        sum += v;
        sum_sq += v * v;
    }
    if n == 0.0 {
        return (0.0, 0.0);
    }
    let mean = sum / n;
    let var = (sum_sq / n - mean * mean).max(0.0);
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_ontology::{GeneratorConfig, OntologyGenerator};

    #[test]
    fn depth_threshold_excludes_shallow_concepts() {
        let ont = OntologyGenerator::new(GeneratorConfig::small(300)).generate();
        let corpus = Corpus::default();
        let f = ConceptFilter::build(
            &ont,
            &corpus,
            FilterConfig { min_depth: 4, cf_sigma: f64::INFINITY },
        );
        for c in ont.concepts() {
            assert_eq!(f.allows(c), ont.depth(c) >= 4, "concept {c}");
        }
        assert!(!f.allows(ont.root()));
    }

    #[test]
    fn frequency_threshold_excludes_ubiquitous_concepts() {
        let ont = OntologyGenerator::new(GeneratorConfig::small(200)).generate();
        // Pick a deep concept and put it in every document; other concepts
        // appear once each.
        let deep: Vec<ConceptId> = ont.concepts().filter(|&c| ont.depth(c) >= 4).collect();
        assert!(deep.len() > 10, "fixture needs deep concepts");
        let common = deep[0];
        let sets: Vec<(Vec<ConceptId>, u32)> =
            deep[1..21].iter().map(|&c| (vec![common, c], 0)).collect();
        let corpus = Corpus::from_concept_sets(sets);
        let f = ConceptFilter::build(&ont, &corpus, FilterConfig::default());
        assert!(!f.allows(common), "ubiquitous concept must be filtered");
        assert!(f.allows(deep[1]), "rare deep concept must survive");
    }

    #[test]
    fn accept_all_admits_everything() {
        let ont = OntologyGenerator::new(GeneratorConfig::small(50)).generate();
        let f = ConceptFilter::accept_all(&ont);
        assert!(ont.concepts().all(|c| f.allows(c)));
        assert_eq!(f.num_eligible(), 50);
        assert_eq!(f.retention(), 1.0);
    }

    #[test]
    fn apply_strips_filtered_concepts_from_corpus() {
        let ont = OntologyGenerator::new(GeneratorConfig::small(300)).generate();
        let all: Vec<ConceptId> = ont.concepts().collect();
        let corpus = Corpus::from_concept_sets(vec![(all.clone(), 0)]);
        let f = ConceptFilter::build(
            &ont,
            &corpus,
            FilterConfig { min_depth: 4, cf_sigma: f64::INFINITY },
        );
        let filtered = f.apply(&corpus);
        let kept = filtered.get(crate::DocId(0)).num_concepts();
        assert_eq!(kept, f.num_eligible());
        assert!(kept < all.len());
    }

    #[test]
    fn out_of_range_concept_is_rejected() {
        let ont = OntologyGenerator::new(GeneratorConfig::small(10)).generate();
        let f = ConceptFilter::accept_all(&ont);
        assert!(!f.allows(ConceptId(1000)));
    }

    #[test]
    fn mean_sd_basic() {
        let (m, s) = super::mean_sd([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter());
        assert!((m - 5.0).abs() < 1e-9);
        assert!((s - 2.0).abs() < 1e-9);
        let (m, s) = super::mean_sd(std::iter::empty());
        assert_eq!((m, s), (0.0, 0.0));
    }
}
