//! Seeded-violation fixture for cbr-flow. Parsed, never compiled.
//!
//! `query` seeds the two F02 shapes (early `return` and `?` between a
//! pool pop and its push-back); `query_guarded` proves the drop-guard
//! exemption; `tick` seeds both F03 discard shapes.

pub struct Ws;

pub struct Pool {
    slots: Vec<Ws>,
}

impl Pool {
    fn pop(&mut self) -> Ws {
        self.slots.pop().unwrap_or(Ws)
    }

    fn push(&mut self, ws: Ws) {
        self.slots.push(ws);
    }
}

pub enum Error {
    Empty,
}

pub struct Service {
    pool: Pool,
}

impl Service {
    pub fn query(&mut self, q: &[u32]) -> Result<u32, Error> {
        let mut ws = self.pool.pop();
        if q.is_empty() {
            return Err(Error::Empty); // seeded: F02
        }
        let parsed = self.parse(q)?; // seeded: F02
        let out = run(&mut ws, parsed);
        self.pool.push(ws);
        Ok(out)
    }

    pub fn query_guarded(&mut self, q: &[u32]) -> Result<u32, Error> {
        let guard = self.pool.pop(); // exempt: a drop guard takes the workspace
        let parsed = self.parse(q)?;
        Ok(finish(guard, parsed))
    }

    fn parse(&self, q: &[u32]) -> Result<u32, Error> {
        q.first().copied().ok_or(Error::Empty)
    }

    pub fn refresh(&mut self) -> Result<(), Error> {
        Ok(())
    }

    pub fn tick(&mut self) {
        let _ = self.refresh(); // seeded: F03
        self.refresh(); // seeded: F03
    }
}

fn run(_ws: &mut Ws, parsed: u32) -> u32 {
    parsed
}

fn finish(_guard: Ws, parsed: u32) -> u32 {
    parsed
}
