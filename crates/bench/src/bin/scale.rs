//! Million-document sustained mixed read/write benchmark.
//!
//! The paper's motivating deployment (Section 1) interleaves clinicians
//! querying with new EMRs arriving; the serving stack reproduces it with
//! the snapshot/session split: reader threads run lock-free RDS sessions
//! against the epoch-published [`EngineSnapshot`](concept_rank::EngineSnapshot)
//! while one writer appends, tombstones, and compacts the segmented index
//! behind its mutex, publishing after every mutation.
//!
//! ```sh
//! cargo run --release -p cbr-bench --bin scale            # 1M docs, ~30 s
//! cargo run --release -p cbr-bench --bin scale -- --smoke # CI variant
//! ```
//!
//! Flags: `--docs <n>` (default 1,000,000), `--readers <n>`, `--phase-ms
//! <ms>` per measured phase, `--label <name>`, `--smoke` (tiny corpus,
//! print + self-validate, write nothing). Measurements append to
//! `BENCH_scale.json` in the working directory through the same
//! [`TrajectorySpec`] machinery as `repro --json` / `BENCH_knds.json`.
//!
//! Two phases, identical query workload:
//!
//! * `read_only` — all readers, idle writer: the lock-free floor.
//! * `mixed` — readers unchanged while the writer sustains a throttled
//!   append/delete stream (an EMR feed) and periodically forces a full
//!   compaction, the worst publish the writer can produce.
//!
//! The gap between the two phases is the price of concurrent writes on
//! the read path — with the epoch-published snapshot design it should be
//! a reload per publish, not a lock.

#![forbid(unsafe_code)]

use cbr_bench::json::Json;
use cbr_bench::trajectory::TrajectorySpec;
use cbr_corpus::{CorpusGenerator, CorpusProfile, DocId};
use cbr_knds::KndsConfig;
use cbr_ontology::{ConceptId, GeneratorConfig, OntologyGenerator};
use concept_rank::{EngineBuilder, SharedEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// The schema of `BENCH_scale.json` — same format as `BENCH_knds.json`,
/// different figures and point identity.
const TRAJECTORY: TrajectorySpec = TrajectorySpec {
    file: "BENCH_scale.json",
    bench: "scale",
    figures: &["scale_mixed"],
    key_fields: &["phase", "kind", "nq", "k"],
    measure_fields: &["median_ns", "p95_ns", "qps"],
};

/// The paper's default result count.
const K: usize = 10;
/// Query size: the middle of the Figure 8 sweep.
const NQ: usize = 4;
/// Error threshold: the paper's RADIO optimum (Figure 7, εθ ≈ 0.9) —
/// right for a sparse, dispersed collection at this scale.
const EPS: f64 = 0.9;
/// Target sustained writer throughput (appends/second) in the mixed
/// phase. Throttled: the point is a *sustained feed* racing readers, not
/// a write-saturation test.
const WRITES_PER_SEC: u64 = 2_000;
/// One delete per this many appends.
const DELETE_EVERY: u64 = 7;
/// One full compaction per this many appends (on top of the policy's
/// automatic tiered merges).
const COMPACT_EVERY: u64 = 4_096;

struct Args {
    docs: usize,
    readers: usize,
    phase_ms: u64,
    label: Option<String>,
    smoke: bool,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args { docs: 0, readers: 0, phase_ms: 0, label: None, smoke: false };
    let mut docs_override = None;
    let mut readers_override = None;
    let mut phase_override = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--docs" => {
                i += 1;
                docs_override = argv.get(i).and_then(|s| s.parse::<usize>().ok());
            }
            "--readers" => {
                i += 1;
                readers_override = argv.get(i).and_then(|s| s.parse::<usize>().ok());
            }
            "--phase-ms" => {
                i += 1;
                phase_override = argv.get(i).and_then(|s| s.parse::<u64>().ok());
            }
            "--label" => {
                i += 1;
                args.label = argv.get(i).cloned();
            }
            "--smoke" => args.smoke = true,
            other => {
                eprintln!("unexpected argument {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    if args.smoke {
        args.docs = docs_override.unwrap_or(3_000);
        args.readers = readers_override.unwrap_or(2);
        args.phase_ms = phase_override.unwrap_or(250);
    } else {
        args.docs = docs_override.unwrap_or(1_000_000);
        // Leave one core for the writer.
        args.readers = readers_override.unwrap_or(cores.saturating_sub(1).clamp(2, 8));
        args.phase_ms = phase_override.unwrap_or(10_000);
    }
    args
}

/// Writer-side totals from the mixed phase.
#[derive(Debug, Default)]
struct WriterStats {
    appends: u64,
    deletes: u64,
    compactions: u64,
}

fn main() {
    let args = parse_args();
    let label =
        args.label
            .clone()
            .unwrap_or_else(|| if args.smoke { "smoke".into() } else { "run".into() });

    // --- Build: RADIO-shaped corpus at serving scale -------------------
    let profile = CorpusProfile::radio_scale(args.docs);
    // Headroom above the sampling vocabulary so the depth filter always
    // leaves enough eligible concepts.
    let ontology_concepts = (profile.vocabulary_size * 3 / 2).max(8_000);
    eprintln!(
        "building: ontology {ontology_concepts} concepts, corpus {} docs ({}) …",
        args.docs, profile.name
    );
    let t = Instant::now();
    let ontology =
        OntologyGenerator::new(GeneratorConfig::snomed_like(ontology_concepts)).generate();
    eprintln!("  ontology ready in {:.1?}", t.elapsed());
    let t = Instant::now();
    let corpus = CorpusGenerator::new(&ontology, profile).generate();
    eprintln!("  corpus ready in {:.1?}", t.elapsed());
    let t = Instant::now();
    // Path-table materialization is once-per-ontology; force it outside
    // the measured phases.
    let _ = ontology.path_table();
    let engine = EngineBuilder::new()
        .knds_config(KndsConfig::default().with_error_threshold(EPS))
        .build(ontology, corpus);
    eprintln!("  engine (segmented index + path table) ready in {:.1?}", t.elapsed());
    let shared = SharedEngine::new(engine);

    // --- Workload: deterministic query/append streams ------------------
    let pool = concept_pool(&shared, 50_000);
    assert!(pool.len() >= NQ, "concept pool too small to form queries");
    let queries = make_queries(&pool, 512, NQ, 0x5CA1_E001);

    // --- Phase 1: read-only floor --------------------------------------
    eprintln!(
        "phase read_only: {} readers × {} ms, {} docs …",
        args.readers,
        args.phase_ms,
        shared.num_docs()
    );
    let duration = Duration::from_millis(args.phase_ms);
    let (read_lat, _) = run_phase(&shared, &queries, args.readers, duration, None);

    // --- Phase 2: readers racing a sustained writer --------------------
    eprintln!("phase mixed: same readers + writer ({WRITES_PER_SEC} appends/s target) …");
    let segments_before = shared.with_engine(|e| e.num_segments());
    let (mixed_lat, stats) = run_phase(&shared, &queries, args.readers, duration, Some(&pool));
    let stats = stats.unwrap_or_default();
    let segments_after = shared.with_engine(|e| e.num_segments());
    eprintln!(
        "  writer: {} appends, {} deletes, {} full compactions; segments {} → {}; {} docs now",
        stats.appends,
        stats.deletes,
        stats.compactions,
        segments_before,
        segments_after,
        shared.num_docs()
    );

    // --- Record --------------------------------------------------------
    let secs = duration.as_secs_f64();
    let run = Json::Obj(vec![
        ("label".into(), Json::Str(label.clone())),
        ("docs".into(), Json::Num(args.docs as f64)),
        ("readers".into(), Json::Num(args.readers as f64)),
        ("phase_ms".into(), Json::Num(args.phase_ms as f64)),
        ("write_rate_target".into(), Json::Num(WRITES_PER_SEC as f64)),
        (
            "writer".into(),
            Json::Obj(vec![
                ("appends".into(), Json::Num(stats.appends as f64)),
                ("deletes".into(), Json::Num(stats.deletes as f64)),
                ("compactions".into(), Json::Num(stats.compactions as f64)),
            ]),
        ),
        (
            "figures".into(),
            Json::Obj(vec![(
                "scale_mixed".into(),
                Json::Arr(vec![
                    phase_point("read_only", &read_lat, secs),
                    phase_point("mixed", &mixed_lat, secs),
                ]),
            )]),
        ),
    ]);

    if args.smoke {
        match TRAJECTORY.smoke(&run) {
            Ok(text) => {
                print!("{text}");
                eprintln!("smoke OK: run re-parsed and validated; nothing written");
            }
            Err(e) => {
                eprintln!("smoke: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    match TRAJECTORY.record(run) {
        Ok(recorded) => {
            for (fig, s) in &recorded.speedups {
                eprintln!("{fig}: median speedup {s}x vs baseline run");
            }
            print!("{}", recorded.text);
            eprintln!("recorded run {label:?} in {}", TRAJECTORY.file);
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

/// Distinct eligible concepts sampled from the bulk corpus (the query
/// and append vocabulary), capped at `limit`.
fn concept_pool(shared: &SharedEngine, limit: usize) -> Vec<ConceptId> {
    shared.with_engine(|e| {
        let mut seen = cbr_ontology::FxHashSet::default();
        let mut pool = Vec::new();
        for d in e.corpus().documents() {
            for &c in d.concepts() {
                if seen.insert(c) {
                    pool.push(c);
                }
            }
            if pool.len() >= limit {
                break;
            }
        }
        pool.sort_unstable();
        pool
    })
}

/// `n` deterministic RDS queries of `nq` distinct concepts each.
fn make_queries(pool: &[ConceptId], n: usize, nq: usize, seed: u64) -> Vec<Vec<ConceptId>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut q = cbr_ontology::FxHashSet::default();
            while q.len() < nq.min(pool.len()) {
                q.insert(pool[rng.random_range(0..pool.len())]);
            }
            let mut v: Vec<ConceptId> = q.into_iter().collect();
            v.sort_unstable();
            v
        })
        .collect()
}

/// Runs one measured phase: `readers` threads cycling RDS queries until
/// the deadline, plus (when `append_pool` is given) one writer thread
/// sustaining the throttled append/delete/compact stream. Returns the
/// merged per-query latencies in nanoseconds and the writer stats.
fn run_phase(
    shared: &SharedEngine,
    queries: &[Vec<ConceptId>],
    readers: usize,
    duration: Duration,
    append_pool: Option<&[ConceptId]>,
) -> (Vec<u64>, Option<WriterStats>) {
    let start = Instant::now();
    let deadline = start + duration;
    std::thread::scope(|scope| {
        let reader_handles: Vec<_> = (0..readers)
            .map(|r| {
                scope.spawn(move || {
                    let mut lat = Vec::new();
                    let mut j = r * 31;
                    while Instant::now() < deadline {
                        let q = &queries[j % queries.len()];
                        j += 1;
                        let t0 = Instant::now();
                        let res = shared.rds(q, K).expect("scale query failed");
                        lat.push(t0.elapsed().as_nanos() as u64);
                        assert!(res.results.len() <= K);
                    }
                    lat
                })
            })
            .collect();

        let writer_handle = append_pool.map(|pool| {
            scope.spawn(move || {
                let mut stats = WriterStats::default();
                let mut appended: Vec<DocId> = Vec::new();
                let mut rng = StdRng::seed_from_u64(0x5CA1_E002);
                // Throttle in small batches: append a burst, then sleep to
                // hold the target rate.
                let batch = 32u64;
                let batch_interval = Duration::from_nanos(batch * 1_000_000_000 / WRITES_PER_SEC);
                let mut next_batch = start;
                while Instant::now() < deadline {
                    for _ in 0..batch {
                        let doc: Vec<ConceptId> =
                            (0..24).map(|_| pool[rng.random_range(0..pool.len())]).collect();
                        appended.push(shared.add_document(doc));
                        stats.appends += 1;
                        if stats.appends % DELETE_EVERY == 0 {
                            let victim = appended.swap_remove(rng.random_range(0..appended.len()));
                            shared.remove_document(victim).expect("appended doc is live");
                            stats.deletes += 1;
                        }
                        if stats.appends % COMPACT_EVERY == 0 {
                            shared.compact();
                            stats.compactions += 1;
                        }
                    }
                    next_batch += batch_interval;
                    let now = Instant::now();
                    if next_batch > now {
                        std::thread::sleep((next_batch - now).min(deadline - now));
                    }
                }
                stats
            })
        });

        let mut lat: Vec<u64> = Vec::new();
        for h in reader_handles {
            lat.extend(h.join().expect("reader thread panicked"));
        }
        let stats = writer_handle.map(|h| h.join().expect("writer thread panicked"));
        (lat, stats)
    })
}

/// One trajectory point from a phase's latency sample.
fn phase_point(phase: &str, lat_ns: &[u64], phase_secs: f64) -> Json {
    let mut sorted = lat_ns.to_vec();
    sorted.sort_unstable();
    let pct = |q: f64| -> f64 {
        if sorted.is_empty() {
            0.0
        } else {
            sorted[((sorted.len() - 1) as f64 * q).round() as usize] as f64
        }
    };
    Json::Obj(vec![
        ("phase".into(), Json::Str(phase.into())),
        ("kind".into(), Json::Str("RDS".into())),
        ("nq".into(), Json::Num(NQ as f64)),
        ("k".into(), Json::Num(K as f64)),
        ("median_ns".into(), Json::Num(pct(0.5))),
        ("p95_ns".into(), Json::Num(pct(0.95))),
        ("qps".into(), Json::Num(lat_ns.len() as f64 / phase_secs.max(1e-9))),
        ("queries".into(), Json::Num(lat_ns.len() as f64)),
    ])
}
