//! `cbr-sched`: deterministic schedule exploration over the engine's
//! concurrent paths.
//!
//! ```sh
//! cbr-sched                         # explore every harness, text report
//! cbr-sched --budget 2000 --json    # machine-readable report
//! cbr-sched --harness pool-stress   # one harness only
//! cbr-sched --replay pool-stress:1a # re-run one printed schedule ID
//! cbr-sched --list                  # enumerate harnesses
//! ```
//!
//! Exits non-zero when any finding survives (or, under
//! `--expect-findings`, when none do — used by the seeded-bug CI pass).

#![forbid(unsafe_code)]

use sched::explore::Options;
use schedrun::harness::{registry, Harness};
use schedrun::report::Report;

/// Default per-harness execution budget: sized so a CI run finishes in
/// seconds while still crossing a thousand distinct schedules across the
/// honest harnesses.
const DEFAULT_BUDGET: usize = 1_200;

struct Cli {
    budget: usize,
    seed: u64,
    json: bool,
    list: bool,
    expect_findings: bool,
    min_schedules: Option<usize>,
    harness: Vec<String>,
    replay: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: cbr-sched [--budget N] [--seed S] [--json] [--list] [--harness NAME]\n\
         \x20                [--replay NAME:ID] [--min-schedules N] [--expect-findings]"
    );
    std::process::exit(2);
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        budget: DEFAULT_BUDGET,
        seed: 0x5EED,
        json: false,
        list: false,
        expect_findings: false,
        min_schedules: None,
        harness: Vec::new(),
        replay: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--budget" => {
                cli.budget = value("--budget").parse().unwrap_or_else(|_| usage());
            }
            "--seed" => {
                cli.seed = value("--seed").parse().unwrap_or_else(|_| usage());
            }
            "--min-schedules" => {
                cli.min_schedules =
                    Some(value("--min-schedules").parse().unwrap_or_else(|_| usage()));
            }
            "--harness" => cli.harness.push(value("--harness")),
            "--replay" => cli.replay = Some(value("--replay")),
            "--json" => cli.json = true,
            "--list" => cli.list = true,
            "--expect-findings" => cli.expect_findings = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    cli
}

fn options(cli: &Cli) -> Options {
    Options { budget: cli.budget, seed: cli.seed, ..Options::default() }
}

fn find<'a>(harnesses: &'a [Harness], name: &str) -> &'a Harness {
    harnesses.iter().find(|h| h.name == name).unwrap_or_else(|| {
        eprintln!("no harness named {name:?}; try --list");
        std::process::exit(2);
    })
}

fn run_replay(cli: &Cli, harnesses: &[Harness], spec: &str) -> i32 {
    let (name, id) = match (spec.split_once(':'), cli.harness.first()) {
        (Some((n, i)), _) => (n.to_string(), i.to_string()),
        (None, Some(n)) => (n.clone(), spec.to_string()),
        (None, None) => {
            eprintln!("--replay wants NAME:ID (or --harness NAME --replay ID)");
            return 2;
        }
    };
    let h = find(harnesses, &name);
    match h.replay(&options(cli), &id) {
        Err(e) => {
            eprintln!("replay failed: {e}");
            2
        }
        Ok(run) => {
            println!("replay {name}:{id} -> schedule {}", run.schedule);
            for (tid, op) in &run.trace {
                println!("  t{tid} {op:?}");
            }
            for f in &run.findings {
                println!("FAIL [{}] {} (schedule {})", f.kind.rule(), f.message, run.schedule);
            }
            i32::from(!run.findings.is_empty())
        }
    }
}

/// Replays every finding that carries a concrete schedule ID and checks
/// the same harness fails again — proving the printed IDs actually
/// reproduce what the exploration saw.
fn confirm_replayable(cli: &Cli, harnesses: &[Harness], report: &Report) -> bool {
    let mut all_confirmed = true;
    for f in &report.findings {
        if f.schedule == "-" {
            continue;
        }
        let h = find(harnesses, &f.harness);
        let reproduced = match h.replay(&options(cli), &f.schedule) {
            Ok(run) => !run.findings.is_empty(),
            Err(_) => false,
        };
        if reproduced {
            println!("replayed {}:{} -> reproduced", f.harness, f.schedule);
        } else {
            println!("replayed {}:{} -> DID NOT reproduce", f.harness, f.schedule);
            all_confirmed = false;
        }
    }
    all_confirmed
}

fn main() {
    let cli = parse_args();
    let harnesses = registry();

    if cli.list {
        for h in &harnesses {
            println!("{:<22} {}", h.name, h.about);
        }
        return;
    }
    if let Some(spec) = cli.replay.clone() {
        std::process::exit(run_replay(&cli, &harnesses, &spec));
    }

    let opts = options(&cli);
    let mut report = Report::default();
    for h in &harnesses {
        if !cli.harness.is_empty() && !cli.harness.iter().any(|n| n == h.name) {
            continue;
        }
        let ex = h.explore(&opts);
        report.absorb(h.name, h.about, &ex);
    }

    if cli.json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }

    if let Some(min) = cli.min_schedules {
        if report.schedules < min {
            eprintln!("explored {} distinct schedules, required {min}", report.schedules);
            std::process::exit(1);
        }
    }

    if cli.expect_findings {
        // Seeded-bug pass: the checker must find something, and every
        // printed schedule ID must reproduce it.
        if report.ok() {
            eprintln!("expected findings (seeded bugs) but the exploration ran clean");
            std::process::exit(1);
        }
        if !confirm_replayable(&cli, &harnesses, &report) {
            std::process::exit(1);
        }
        return;
    }
    if !report.ok() {
        std::process::exit(1);
    }
}
