//! Workspace umbrella for the EDBT 2014 reproduction.
//!
//! The real library surface lives in [`concept_rank`]; this crate hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`), plus a few helpers they share.

#![forbid(unsafe_code)]

pub use concept_rank::*;

/// Shared scaffolding for examples and integration tests.
pub mod demo {
    use cbr_corpus::{Corpus, CorpusGenerator, CorpusProfile};
    use cbr_ontology::{GeneratorConfig, Ontology, OntologyGenerator};
    use concept_rank::{Engine, EngineBuilder};

    /// A small SNOMED-shaped ontology (deterministic).
    pub fn small_ontology(concepts: usize) -> Ontology {
        OntologyGenerator::new(GeneratorConfig::snomed_like(concepts)).generate()
    }

    /// A RADIO-shaped corpus over `ont` (deterministic).
    pub fn small_corpus(ont: &Ontology, docs: usize, mean_concepts: f64) -> Corpus {
        CorpusGenerator::new(
            ont,
            CorpusProfile::radio_like().with_num_docs(docs).with_mean_concepts(mean_concepts),
        )
        .generate()
    }

    /// A ready-made engine over the two generators above, with the paper's
    /// Section 6.1 concept filter enabled.
    pub fn engine(concepts: usize, docs: usize, mean_concepts: f64) -> Engine {
        let ont = small_ontology(concepts);
        let corpus = small_corpus(&ont, docs, mean_concepts);
        EngineBuilder::new().filter(cbr_corpus::FilterConfig::default()).build(ont, corpus)
    }
}
